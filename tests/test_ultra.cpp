// Tests for the ultra-sparse spanner (Lemma 5.1 / Theorem 1.4).
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/ultra.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

TEST(UltraSparseSpanner, InitIsValidSpanner) {
  for (uint64_t seed : {1u, 2u}) {
    // Mixed degrees: a dense core (heavy vertices) + sparse periphery.
    auto edges = gen_erdos_renyi(80, 900, seed);
    UltraConfig cfg;
    cfg.x = 2;
    cfg.seed = seed * 11 + 3;
    UltraSparseSpanner sp(80, edges, cfg);
    EXPECT_TRUE(sp.check_invariants());
    EXPECT_TRUE(
        is_spanner(80, edges, sp.spanner_edges(), sp.stretch_bound()))
        << "seed=" << seed << " bound=" << sp.stretch_bound();
  }
}

TEST(UltraSparseSpanner, UltraSparsity) {
  // Theorem 1.4: n + O(n/x) edges. With a forest-dominated composition the
  // edge count must stay close to n.
  const size_t n = 300;
  auto edges = gen_erdos_renyi(n, 3000, 5);
  UltraConfig cfg;
  cfg.x = 3;
  cfg.seed = 7;
  UltraSparseSpanner sp(n, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_LE(sp.spanner_size(), n + n);  // generous O(n/x) slack at small n
}

class UltraRandom : public ::testing::TestWithParam<
                        std::tuple<size_t, size_t, uint32_t, uint64_t>> {};

TEST_P(UltraRandom, MixedStreamKeepsInvariants) {
  auto [n, m, x, seed] = GetParam();
  auto [initial, batches] = gen_mixed_stream(n, m, 16, 8, seed);
  UltraConfig cfg;
  cfg.x = x;
  cfg.seed = seed ^ 0xabcd;
  UltraSparseSpanner sp(n, initial, cfg);
  ASSERT_TRUE(sp.check_invariants());

  std::unordered_set<EdgeKey> live, mat;
  for (const Edge& e : initial) live.insert(e.key());
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());

  for (auto& b : batches) {
    auto diff = sp.update(b.insertions, b.deletions);
    for (const Edge& e : b.deletions) live.erase(e.key());
    for (const Edge& e : b.insertions) live.insert(e.key());
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key()));
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key()));
      mat.insert(e.key());
    }
    ASSERT_EQ(mat.size(), sp.spanner_size());
    ASSERT_TRUE(sp.check_invariants());
    std::vector<Edge> alive;
    for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
    ASSERT_TRUE(
        is_spanner(n, alive, sp.spanner_edges(), sp.stretch_bound()));
    for (const Edge& e : sp.spanner_edges())
      ASSERT_TRUE(live.count(e.key()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UltraRandom,
    ::testing::Values(
        std::make_tuple(size_t{30}, size_t{200}, uint32_t{2}, uint64_t{1}),
        std::make_tuple(size_t{40}, size_t{500}, uint32_t{2}, uint64_t{2}),
        std::make_tuple(size_t{50}, size_t{300}, uint32_t{3}, uint64_t{3}),
        std::make_tuple(size_t{25}, size_t{80}, uint32_t{2}, uint64_t{4}),
        std::make_tuple(size_t{60}, size_t{900}, uint32_t{4}, uint64_t{5})));

TEST(UltraSparseSpanner, DeleteEverything) {
  auto edges = gen_erdos_renyi(40, 400, 9);
  UltraConfig cfg;
  cfg.x = 2;
  cfg.seed = 13;
  UltraSparseSpanner sp(40, edges, cfg);
  auto diff = sp.delete_edges(edges);
  EXPECT_EQ(sp.spanner_size(), 0u);
  EXPECT_EQ(sp.num_edges(), 0u);
  EXPECT_TRUE(sp.check_invariants());
}

TEST(UltraSparseSpanner, SparseGraphBotComponents) {
  // Tiny disconnected components stay ⊥ and are covered by the H2 forest.
  std::vector<Edge> edges;
  for (VertexId b = 0; b < 30; b += 3) {
    edges.emplace_back(b, b + 1);
    edges.emplace_back(b + 1, b + 2);
  }
  UltraConfig cfg;
  cfg.x = 4;  // T = 80: everything light, components tiny
  cfg.seed = 3;
  UltraSparseSpanner sp(30, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(30, edges, sp.spanner_edges(), sp.stretch_bound()));
  // Components with no sampled vertex are ⊥-clusters in the H2 forest; the
  // spanner of a forest is the forest itself.
  EXPECT_EQ(sp.spanner_size(), edges.size());
}

}  // namespace
}  // namespace parspan
