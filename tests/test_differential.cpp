// Differential stress suite: FullyDynamicSpanner vs from-scratch static
// recomputation over long random update streams.
//
// Three (n, k, seed) points each drive ~200 mixed insert/delete batches.
// After every batch:
//  * the maintained edge set must be a (2k-1)-spanner of the live graph;
//  * its size must respect the O(k·n^{1+1/k}) bound (the initial densities
//    are chosen ABOVE the bound, so the assertion is non-vacuous — the
//    structure must actually sparsify);
//  * replaying the returned SpannerDiff stream from the initial spanner
//    must reconstruct spanner_edges() byte-for-byte — the contract the
//    incremental snapshot publishing of the service layer (DESIGN.md §8)
//    stands on.
// Every 25 batches the live graph is additionally handed to the two static
// baselines (StaticMPVX, Baswana-Sen); their outputs pin the same size
// bound and cross-check that the dynamic structure's size stays within a
// constant factor of a from-scratch recompute.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "container/flat_map.hpp"
#include "core/baselines/baswana_sen.hpp"
#include "core/baselines/static_mpvx.hpp"
#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

std::vector<EdgeKey> sorted_keys(const std::vector<Edge>& es) {
  std::vector<EdgeKey> ks(es.size());
  for (size_t i = 0; i < es.size(); ++i) ks[i] = es[i].key();
  std::sort(ks.begin(), ks.end());
  return ks;
}

struct DifferentialPoint {
  size_t n;
  uint32_t k;
  uint64_t seed;
  size_t initial_m;  // chosen above the size bound, so sparsification shows
  size_t batch_size;
  size_t num_batches;
};

/// Size cap asserted for both the dynamic structure and the static
/// baselines: C·k·n^{1+1/k} + n. The baselines are O(k·n^{1+1/k}) expected
/// with small constants; the dynamic structure is a union of partition
/// spanners of the same bound plus the E_0 buffer (capacity
/// 2^{l0} < 2·n^{1+1/k}, all of it spanner). Observed maxima across the
/// pinned seeds stay below 1.3·k·n^{1+1/k}; C = 3 keeps >2x regression
/// headroom.
size_t size_cap(size_t n, uint32_t k) {
  double bound = double(k) * std::pow(double(n), 1.0 + 1.0 / double(k));
  return size_t(3.0 * bound) + n;
}

class Differential : public ::testing::TestWithParam<DifferentialPoint> {};

TEST_P(Differential, TwoHundredBatchesAgainstStaticRecompute) {
  const DifferentialPoint p = GetParam();
  const uint32_t stretch = 2 * p.k - 1;
  const size_t cap = size_cap(p.n, p.k);

  auto [initial, batches] = gen_mixed_stream(
      p.n, p.initial_m, p.batch_size, p.num_batches, p.seed);
  ASSERT_EQ(batches.size(), p.num_batches);

  FullyDynamicSpannerConfig cfg;
  cfg.k = p.k;
  cfg.seed = p.seed * 1000 + 1;
  FullyDynamicSpanner sp(p.n, initial, cfg);

  // The replayed spanner: starts from the post-construction export and is
  // advanced only by the returned diffs.
  std::vector<EdgeKey> replay = sorted_keys(sp.spanner_edges());

  FlatHashSet<EdgeKey> live;
  live.reserve(2 * p.initial_m);
  for (const Edge& e : initial) live.insert(e.key());

  for (size_t b = 0; b < batches.size(); ++b) {
    SpannerDiff d = sp.update(batches[b].insertions, batches[b].deletions);
    for (const Edge& e : batches[b].deletions) live.erase(e.key());
    for (const Edge& e : batches[b].insertions) live.insert(e.key());
    ASSERT_EQ(live.size(), sp.num_edges()) << "batch " << b;

    // Replay the diff: removals must hit, insertions must be new, and the
    // result must equal the structure's own export byte-for-byte.
    {
      std::vector<EdgeKey> add(d.inserted.size()), rem(d.removed.size());
      for (size_t i = 0; i < d.inserted.size(); ++i)
        add[i] = d.inserted[i].key();
      for (size_t i = 0; i < d.removed.size(); ++i)
        rem[i] = d.removed[i].key();
      ASSERT_TRUE(std::is_sorted(add.begin(), add.end()));
      ASSERT_TRUE(std::is_sorted(rem.begin(), rem.end()));
      std::vector<EdgeKey> next;
      next.reserve(replay.size() + add.size());
      size_t ai = 0, ri = 0;
      for (EdgeKey k : replay) {
        if (ri < rem.size() && rem[ri] == k) {
          ++ri;
          continue;
        }
        while (ai < add.size() && add[ai] < k) next.push_back(add[ai++]);
        ASSERT_TRUE(ai >= add.size() || add[ai] != k)
            << "batch " << b << ": diff inserts an edge already present";
        next.push_back(k);
      }
      ASSERT_EQ(ri, rem.size())
          << "batch " << b << ": diff removes an edge not in the spanner";
      while (ai < add.size()) next.push_back(add[ai++]);
      replay = std::move(next);
      ASSERT_EQ(replay, sorted_keys(sp.spanner_edges())) << "batch " << b;
    }

    // Stretch + size bound, every batch.
    std::vector<Edge> live_edges;
    live_edges.reserve(live.size());
    live.for_each([&](EdgeKey ek) { live_edges.push_back(edge_from_key(ek)); });
    ASSERT_TRUE(is_spanner(p.n, live_edges, sp.spanner_edges(), stretch))
        << "batch " << b;
    ASSERT_LE(sp.spanner_size(), cap) << "batch " << b;

    // From-scratch recompute checkpoints.
    if (b % 25 == 24 || b + 1 == batches.size()) {
      ASSERT_TRUE(sp.check_invariants()) << "batch " << b;
      MpvxResult mp = mpvx_spanner(p.n, live_edges, p.k, p.seed + b);
      std::vector<Edge> bs =
          baswana_sen_spanner(p.n, live_edges, p.k, p.seed + b);
      ASSERT_TRUE(is_spanner(p.n, live_edges, mp.spanner, stretch));
      ASSERT_TRUE(is_spanner(p.n, live_edges, bs, stretch));
      ASSERT_LE(mp.spanner.size(), cap) << "batch " << b;
      ASSERT_LE(bs.size(), cap) << "batch " << b;
      // The dynamic size must stay within a constant factor of rebuilding
      // from scratch. The factor is legitimately > 1 at these scales: the
      // Bentley-Saxe union keeps every E_0-buffer edge (up to 2·n^{1+1/k})
      // on top of its partition spanners. Observed worst across the pinned
      // seeds is 4.7; 7 leaves regression headroom.
      size_t fresh = std::min(mp.spanner.size(), bs.size());
      ASSERT_LE(sp.spanner_size(), 7 * (fresh + p.n)) << "batch " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Points, Differential,
    ::testing::Values(
        DifferentialPoint{96, 2, 3, 2400, 24, 200},
        DifferentialPoint{160, 3, 11, 3400, 24, 200},
        DifferentialPoint{256, 4, 29, 5200, 32, 200}),
    [](const ::testing::TestParamInfo<DifferentialPoint>& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace parspan
