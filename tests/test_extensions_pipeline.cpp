// Tests for the extensions-layer parallel pipeline (DESIGN.md §7):
// thread-count determinism of the MonotoneSpanner / UltraSparseSpanner /
// DecrementalSparsifier batch diffs (1 vs 4 workers, byte-identical over a
// 50-batch deletion sequence, mirroring test_parallel_pipeline.cpp), the
// key-sorted diff contract, identically-seeded run reproducibility, and
// cumulative_recourse monotonicity over a long stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/bundle.hpp"
#include "core/mpx_spanner.hpp"
#include "core/sparsifier.hpp"
#include "core/ultra.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"

namespace parspan {
namespace {

bool sorted_by_key(const std::vector<Edge>& es) {
  return std::is_sorted(es.begin(), es.end());
}

bool sorted_by_key_weight(const std::vector<WeightedEdge>& es) {
  return std::is_sorted(es.begin(), es.end(),
                        [](const WeightedEdge& a, const WeightedEdge& b) {
                          return a.e.key() != b.e.key()
                                     ? a.e.key() < b.e.key()
                                     : a.w < b.w;
                        });
}

void expect_equal(const SpannerDiff& a, const SpannerDiff& b, size_t batch) {
  ASSERT_EQ(a.inserted.size(), b.inserted.size()) << "batch " << batch;
  ASSERT_EQ(a.removed.size(), b.removed.size()) << "batch " << batch;
  for (size_t j = 0; j < a.inserted.size(); ++j)
    ASSERT_EQ(a.inserted[j].key(), b.inserted[j].key())
        << "batch " << batch << " entry " << j;
  for (size_t j = 0; j < a.removed.size(); ++j)
    ASSERT_EQ(a.removed[j].key(), b.removed[j].key())
        << "batch " << batch << " entry " << j;
}

void expect_equal(const WeightedDiff& a, const WeightedDiff& b,
                  size_t batch) {
  ASSERT_EQ(a.inserted.size(), b.inserted.size()) << "batch " << batch;
  ASSERT_EQ(a.removed.size(), b.removed.size()) << "batch " << batch;
  for (size_t j = 0; j < a.inserted.size(); ++j) {
    ASSERT_EQ(a.inserted[j].e.key(), b.inserted[j].e.key())
        << "batch " << batch << " entry " << j;
    ASSERT_EQ(a.inserted[j].w, b.inserted[j].w)
        << "batch " << batch << " entry " << j;
  }
  for (size_t j = 0; j < a.removed.size(); ++j) {
    ASSERT_EQ(a.removed[j].e.key(), b.removed[j].e.key())
        << "batch " << batch << " entry " << j;
    ASSERT_EQ(a.removed[j].w, b.removed[j].w)
        << "batch " << batch << " entry " << j;
  }
}

// --- MonotoneSpanner: 1 vs 4 workers over a 50-batch deletion stream. -----
TEST(ExtensionsPipeline, MonotoneDiffDeterministicAcrossThreadCounts) {
  const size_t n = 80;
  auto edges = gen_erdos_renyi(n, 1000, 3);
  auto stream = gen_decremental_stream(edges, 20, 11);
  ASSERT_EQ(stream.size(), 50u);

  int saved = num_workers();
  std::vector<SpannerDiff> base;
  {
    set_num_workers(1);
    MonotoneSpannerConfig cfg;
    cfg.seed = 5;
    MonotoneSpanner sp(n, edges, cfg);
    for (auto& b : stream) base.push_back(sp.delete_edges(b.deletions));
  }
  {
    set_num_workers(4);
    MonotoneSpannerConfig cfg;
    cfg.seed = 5;
    MonotoneSpanner sp(n, edges, cfg);
    for (size_t i = 0; i < stream.size(); ++i) {
      SpannerDiff d = sp.delete_edges(stream[i].deletions);
      ASSERT_TRUE(sorted_by_key(d.inserted)) << "batch " << i;
      ASSERT_TRUE(sorted_by_key(d.removed)) << "batch " << i;
      expect_equal(d, base[i], i);
    }
    EXPECT_EQ(sp.spanner_size(), 0u);
  }
  set_num_workers(saved);
}

// --- UltraSparseSpanner: 1 vs 4 workers over a mixed stream. --------------
TEST(ExtensionsPipeline, UltraDiffDeterministicAcrossThreadCounts) {
  const size_t n = 60;
  auto [initial, batches] = gen_mixed_stream(n, 700, 24, 25, 9);

  int saved = num_workers();
  std::vector<SpannerDiff> base;
  std::vector<std::vector<Edge>> base_spanner;
  {
    set_num_workers(1);
    UltraConfig cfg;
    cfg.x = 2;
    cfg.seed = 7;
    UltraSparseSpanner sp(n, initial, cfg);
    for (auto& b : batches) {
      base.push_back(sp.update(b.insertions, b.deletions));
      base_spanner.push_back(sp.spanner_edges());
    }
  }
  {
    set_num_workers(4);
    UltraConfig cfg;
    cfg.x = 2;
    cfg.seed = 7;
    UltraSparseSpanner sp(n, initial, cfg);
    for (size_t i = 0; i < batches.size(); ++i) {
      SpannerDiff d = sp.update(batches[i].insertions, batches[i].deletions);
      ASSERT_TRUE(sorted_by_key(d.inserted)) << "batch " << i;
      ASSERT_TRUE(sorted_by_key(d.removed)) << "batch " << i;
      expect_equal(d, base[i], i);
      // spanner_edges is key-sorted, so element-wise equality is exact.
      ASSERT_EQ(sp.spanner_edges(), base_spanner[i]) << "batch " << i;
    }
  }
  set_num_workers(saved);
}

// --- DecrementalSparsifier: 1 vs 4 workers, 50-batch deletion stream. -----
TEST(ExtensionsPipeline, SparsifierDiffDeterministicAcrossThreadCounts) {
  const size_t n = 40;
  auto edges = gen_erdos_renyi(n, 400, 5);
  auto stream = gen_decremental_stream(edges, 8, 13);
  ASSERT_EQ(stream.size(), 50u);

  int saved = num_workers();
  std::vector<WeightedDiff> base;
  {
    set_num_workers(1);
    SparsifierConfig cfg;
    cfg.t = 2;
    cfg.seed = 17;
    DecrementalSparsifier sp(n, edges, cfg);
    for (auto& b : stream) base.push_back(sp.delete_edges(b.deletions));
  }
  {
    set_num_workers(4);
    SparsifierConfig cfg;
    cfg.t = 2;
    cfg.seed = 17;
    DecrementalSparsifier sp(n, edges, cfg);
    for (size_t i = 0; i < stream.size(); ++i) {
      WeightedDiff d = sp.delete_edges(stream[i].deletions);
      ASSERT_TRUE(sorted_by_key_weight(d.inserted)) << "batch " << i;
      ASSERT_TRUE(sorted_by_key_weight(d.removed)) << "batch " << i;
      expect_equal(d, base[i], i);
    }
    EXPECT_EQ(sp.size(), 0u);
  }
  set_num_workers(saved);
}

// --- Parallel cascade must keep propagating the carry. --------------------
// Regression test: the two-round parallel deletion path once forwarded only
// freshly absorbed edges to the next stage, dropping carry edges that were
// deleted (without re-absorption) at stage j+1 but still alive at stage
// j+2 — breaking the stage-nesting invariant and diverging from the
// 1-worker serial chain. Needs small bundles (t=1, one instance) with a
// generous sample_rate so the deeper stages keep real residuals.
TEST(ExtensionsPipeline, SparsifierCascadePropagatesCarryAcrossStages) {
  const size_t n = 120;
  auto edges = gen_erdos_renyi(n, 3000, 8);
  auto stream = gen_decremental_stream(edges, 100, 19);

  int saved = num_workers();
  auto run = [&](int workers) {
    set_num_workers(workers);
    SparsifierConfig cfg;
    cfg.t = 1;
    cfg.instances = 1;
    cfg.sample_rate = 0.5;
    cfg.seed = 23;
    DecrementalSparsifier sp(n, edges, cfg);
    EXPECT_GE(sp.num_stages(), 3u) << "config must produce a real chain";
    std::vector<WeightedDiff> out;
    for (auto& b : stream) {
      out.push_back(sp.delete_edges(b.deletions));
      EXPECT_TRUE(sp.check_invariants())
          << "workers=" << workers << " batch " << out.size() - 1;
    }
    EXPECT_EQ(sp.size(), 0u);
    return out;
  };
  auto serial = run(1);
  auto parallel = run(4);
  set_num_workers(saved);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i)
    expect_equal(serial[i], parallel[i], i);
}

// --- Identically-seeded runs emit identical, key-sorted diffs. ------------
// Regression test for the DESIGN.md §6 contract violation: the extensions
// used to emit diffs in hash-iteration order, so two identical runs could
// disagree element-wise even with equal diff *sets*.
TEST(ExtensionsPipeline, IdenticallySeededRunsEmitIdenticalDiffs) {
  const size_t n = 50;
  auto edges = gen_erdos_renyi(n, 500, 21);
  auto stream = gen_decremental_stream(edges, 25, 31);
  auto run = [&]() {
    std::vector<SpannerDiff> out;
    MonotoneSpannerConfig cfg;
    cfg.seed = 77;
    MonotoneSpanner sp(n, edges, cfg);
    for (auto& b : stream) out.push_back(sp.delete_edges(b.deletions));
    return out;
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(sorted_by_key(a[i].inserted));
    ASSERT_TRUE(sorted_by_key(a[i].removed));
    expect_equal(a[i], b[i], i);
  }
}

// --- cumulative_recourse is monotone and equals the emitted diff volume. --
TEST(ExtensionsPipeline, CumulativeRecourseMonotoneOverStream) {
  const size_t n = 60;
  auto edges = gen_erdos_renyi(n, 800, 2);
  MonotoneSpannerConfig mcfg;
  mcfg.seed = 3;
  MonotoneSpanner msp(n, edges, mcfg);
  BundleConfig bcfg;
  bcfg.t = 2;
  bcfg.seed = 4;
  SpannerBundle bsp(n, edges, bcfg);

  auto stream = gen_decremental_stream(edges, 16, 23);
  ASSERT_EQ(stream.size(), 50u);
  uint64_t prev_m = msp.cumulative_recourse();
  uint64_t prev_b = bsp.cumulative_recourse();
  uint64_t bundle_volume = 0;
  for (auto& b : stream) {
    msp.delete_edges(b.deletions);
    SpannerDiff d = bsp.delete_edges(b.deletions);
    bundle_volume += d.inserted.size() + d.removed.size();
    ASSERT_GE(msp.cumulative_recourse(), prev_m);
    ASSERT_GE(bsp.cumulative_recourse(), prev_b);
    prev_m = msp.cumulative_recourse();
    prev_b = bsp.cumulative_recourse();
  }
  // The bundle's counter is exactly the diff volume it emitted; the
  // monotone property keeps it at most 2m + |B_0| over the full stream.
  EXPECT_EQ(bsp.cumulative_recourse(), bundle_volume);
  EXPECT_EQ(msp.spanner_size(), 0u);
  EXPECT_EQ(bsp.bundle_size(), 0u);
}

}  // namespace
}  // namespace parspan
