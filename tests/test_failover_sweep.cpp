// Failover sweep (DESIGN.md §11.4/§11.6): leader + 3 followers replicating
// at staggered cadences (so their durable logs genuinely differ), leader
// killed at every point of the ingest stream. At each kill point:
//
//   * election must pick exactly the longest durably-verified log (computed
//     independently here, ties to the lowest index);
//   * promotion must restore precisely the winner's durable watermark — the
//     restored checksum is a point of the dead leader's publish history
//     (the oracle), and the rebase publishes restored + 1;
//   * survivors must converge onto the new leader through an explicit
//     epoch-bump snapshot resync, never a silent divergence, and ingest
//     must then continue on the new leader with followers tracking it;
//   * a deposed leader's late frames must die on the followers' epoch
//     check, and a winner whose chain rots mid-failover must fail
//     promotion HONESTLY (nullptr), with the runner-up promotable instead.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/checkpoint.hpp"
#include "durability/fault_fs.hpp"
#include "graph/generators.hpp"
#include "replication/failover.hpp"
#include "replication/replica_set.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

bool tiny_sweep() {
  const char* env = std::getenv("PARSPAN_SWEEP_TINY");
  return env != nullptr && env[0] == '1';
}

struct Workload {
  size_t n = 120;
  std::vector<Edge> initial;
  std::vector<UpdateBatch> batches;
  FullyDynamicSpannerConfig cfg;
};

Workload make_workload(uint64_t seed) {
  Workload w;
  auto [initial, batches] = gen_mixed_stream(w.n, 700, 40, 12, seed);
  w.initial = std::move(initial);
  w.batches = std::move(batches);
  w.cfg.k = 3;
  w.cfg.seed = seed * 7 + 1;
  return w;
}

std::unique_ptr<SpannerService> make_service(const Workload& w) {
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(w.n, w.initial, w.cfg),
      2 * w.cfg.k - 1);
}

// recover()'s backend factory for promotions.
auto backend_factory(const Workload& w) {
  return [cfg = w.cfg](uint64_t n, const std::vector<Edge>& edges, uint32_t) {
    return std::make_unique<FullyDynamicSpanner>(static_cast<size_t>(n), edges,
                                                 cfg);
  };
}

// One leader + 3 followers on healthy channels, followers pumping at
// staggered cadences {1,2,3} batches — rotated by `rot` so the winning
// INDEX varies across kill points and lowest-index tie-breaks actually
// fire. Returns after `t` ingested batches.
struct Cluster {
  std::shared_ptr<MemFs> leader_fs;
  std::unique_ptr<SpannerService> leader;
  std::unique_ptr<ReplicationGroup> group;
  std::vector<std::shared_ptr<ReplicationTransport>> transports;
  std::vector<std::shared_ptr<MemFs>> follower_fs;
  std::vector<uint64_t> oracle;  // leader checksum by version
};

Cluster ingest_until(const Workload& w, size_t t, size_t rot) {
  Cluster c;
  DurabilityOptions opts;
  opts.checkpoint_every = 4;
  c.leader_fs = std::make_shared<MemFs>();
  c.leader = make_service(w);
  EXPECT_TRUE(c.leader->enable_durability(c.leader_fs, "leader", opts,
                                          w.initial));
  c.group = std::make_unique<ReplicationGroup>(c.leader.get(), /*epoch=*/1);
  DurabilityOptions fopts;
  fopts.checkpoint_every = 4;
  for (size_t i = 0; i < 3; ++i) {
    c.transports.push_back(std::make_shared<ChannelTransport>());
    c.follower_fs.push_back(std::make_shared<MemFs>());
    c.group->add_follower(c.transports[i], c.follower_fs[i],
                          "f" + std::to_string(i), fopts);
  }
  c.oracle.push_back(c.leader->snapshot()->checksum());
  for (size_t b = 0; b < t; ++b) {
    auto r = c.leader->apply(w.batches[b].insertions, w.batches[b].deletions);
    c.oracle.push_back(r.snapshot->checksum());
    for (size_t i = 0; i < 3; ++i) {
      const size_t cadence = (i + rot) % 3 + 1;
      if ((b + 1) % cadence != 0) continue;
      c.group->shipper(i).pump(c.group->leader_durable());
      c.group->follower(i).pump();
    }
  }
  return c;
}

TEST(FailoverSweep, LongestDurableLogWinsAtEveryKillPoint) {
  const Workload w = make_workload(17);
  const size_t nb = w.batches.size();
  std::vector<size_t> kill_points;
  if (tiny_sweep())
    kill_points = {2, 7, nb};
  else
    for (size_t t = 1; t <= nb; ++t) kill_points.push_back(t);

  const auto make_backend = backend_factory(w);
  bool saw_distinct_logs = false;
  bool saw_tie = false;
  for (size_t t : kill_points) {
    SCOPED_TRACE("kill after batch " + std::to_string(t));
    Cluster c = ingest_until(w, t, /*rot=*/t);

    // Independent election oracle: manual argmax over durable logs, first
    // index wins ties, stateless candidates never run.
    std::vector<const FollowerReplica*> cands;
    for (size_t i = 0; i < 3; ++i) cands.push_back(&c.group->follower(i));
    size_t exp_winner = cands.size();
    uint64_t exp_dv = 0;
    std::set<uint64_t> distinct;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (!cands[i]->has_state()) continue;
      const uint64_t dv = cands[i]->durable_version();
      distinct.insert(dv);
      if (exp_winner == cands.size() || dv > exp_dv) {
        exp_winner = i;
        exp_dv = dv;
      } else if (dv == exp_dv) {
        saw_tie = true;
      }
    }
    saw_distinct_logs |= distinct.size() >= 2;

    const auto elect = elect_longest_log(cands);
    if (exp_winner == cands.size()) {
      // Nobody has state yet (earliest kill points): honest admission.
      EXPECT_FALSE(elect.has_value());
      continue;
    }
    ASSERT_TRUE(elect.has_value());
    EXPECT_EQ(elect->winner, exp_winner);
    EXPECT_EQ(elect->durable_version, exp_dv);

    // The leader dies: pull every follower out, then destroy leader+group.
    std::vector<std::unique_ptr<FollowerReplica>> fols;
    for (size_t i = 0; i < 3; ++i) fols.push_back(c.group->detach(0));
    c.group.reset();
    c.leader.reset();

    // Promotion restores exactly the elected watermark — the restored
    // checksum must be the dead leader's publish history at that version.
    SpannerService::RecoveryReport rep;
    auto leader2 =
        promote_follower(std::move(fols[elect->winner]), make_backend, &rep);
    ASSERT_NE(leader2, nullptr);
    EXPECT_EQ(rep.restored_version, elect->durable_version);
    ASSERT_LT(rep.restored_version, c.oracle.size());
    EXPECT_EQ(rep.restored_checksum, c.oracle[rep.restored_version]);
    EXPECT_EQ(rep.published_version, rep.restored_version + 1);

    // Survivors re-subscribe under epoch 2 and converge via an explicit
    // epoch-bump snapshot resync.
    auto group2 = std::make_unique<ReplicationGroup>(leader2.get(),
                                                     /*epoch=*/2);
    std::vector<uint64_t> resyncs_before;
    for (size_t i = 0; i < 3; ++i) {
      if (i == elect->winner) continue;
      resyncs_before.push_back(fols[i]->snapshot_resyncs());
      group2->attach(std::move(fols[i]), c.transports[i]);
    }
    for (int round = 0; round < 12 && !group2->converged(); ++round)
      group2->pump();
    ASSERT_TRUE(group2->converged());
    EXPECT_EQ(group2->leader_durable(), rep.published_version);
    const uint64_t rebase_ck = leader2->snapshot()->checksum();
    for (size_t i = 0; i < group2->num_followers(); ++i) {
      EXPECT_EQ(group2->follower(i).epoch(), 2u);
      EXPECT_EQ(group2->follower(i).applied_version(), rep.published_version);
      EXPECT_EQ(group2->follower(i).applied_checksum(), rebase_ck);
      EXPECT_EQ(group2->follower(i).rejects(), 0u);
      EXPECT_GT(group2->follower(i).snapshot_resyncs(), resyncs_before[i]);
    }

    // Life goes on: the remaining stream ingests on the new leader and the
    // survivors track its (new) history.
    std::vector<uint64_t> oracle2{rebase_ck};
    for (size_t b = t; b < nb; ++b) {
      auto r =
          leader2->apply(w.batches[b].insertions, w.batches[b].deletions);
      oracle2.push_back(r.snapshot->checksum());
      group2->pump();
    }
    group2->pump();
    ASSERT_TRUE(group2->converged());
    const uint64_t final_v = rep.published_version + (nb - t);
    EXPECT_EQ(group2->leader_durable(), final_v);
    for (size_t i = 0; i < group2->num_followers(); ++i) {
      EXPECT_EQ(group2->follower(i).applied_version(), final_v);
      EXPECT_EQ(group2->follower(i).applied_checksum(), oracle2.back());
      EXPECT_EQ(group2->follower(i).rejects(), 0u);
    }
  }
  // The sweep only means something if the cadences actually produced
  // different log lengths — and at least one tie-break fired.
  EXPECT_TRUE(saw_distinct_logs);
  if (!tiny_sweep()) EXPECT_TRUE(saw_tie);
}

// A deposed leader that keeps shipping after failover must be ignored:
// its epoch-1 frames die on the follower's epoch check, counted, with the
// follower's state untouched.
TEST(FailoverSweep, DeposedLeaderLateFramesAreDropped) {
  const Workload w = make_workload(23);
  Cluster c = ingest_until(w, 6, /*rot=*/0);
  const uint64_t old_durable = c.group->leader_durable();

  std::vector<std::unique_ptr<FollowerReplica>> fols;
  for (size_t i = 0; i < 3; ++i) fols.push_back(c.group->detach(0));
  c.group.reset();
  c.leader.reset();

  const auto elect = elect_longest_log(
      {fols[0].get(), fols[1].get(), fols[2].get()});
  ASSERT_TRUE(elect.has_value());
  auto leader2 = promote_follower(std::move(fols[elect->winner]),
                                  backend_factory(w), nullptr);
  ASSERT_NE(leader2, nullptr);
  const size_t survivor = elect->winner == 0 ? 1 : 0;
  ReplicationGroup group2(leader2.get(), /*epoch=*/2);
  FollowerReplica& f =
      group2.attach(std::move(fols[survivor]), c.transports[survivor]);
  for (int round = 0; round < 12 && !group2.converged(); ++round)
    group2.pump();
  ASSERT_TRUE(group2.converged());

  // The old leader's directory still exists (it died, its disk did not);
  // a zombie shipper at the old epoch picks up the survivor's cursor and
  // ships an epoch-1 snapshot. The survivor must drop it cold.
  const uint64_t v_before = f.applied_version();
  const uint64_t ck_before = f.applied_checksum();
  const uint64_t drops_before = f.stale_epoch_drops();
  f.pump();  // enqueue a fresh cursor for the zombie to find
  LogShipper zombie(c.leader_fs, "leader", /*epoch=*/1,
                    c.transports[survivor]);
  zombie.pump(old_durable);
  EXPECT_GT(zombie.snapshots_shipped(), 0u);
  f.pump();
  EXPECT_GT(f.stale_epoch_drops(), drops_before);
  EXPECT_EQ(f.applied_version(), v_before);
  EXPECT_EQ(f.applied_checksum(), ck_before);
  EXPECT_EQ(f.rejects(), 0u);  // an epoch drop is a drop, not a reject
}

// Media death mid-failover: the elected winner's chain loses its
// checkpoints between election and promotion. Promotion must fail
// HONESTLY (nullptr, never a fabricated leader), and the runner-up must
// then promote cleanly.
TEST(FailoverSweep, MediaDeathMidFailoverFallsBackToRunnerUp) {
  const Workload w = make_workload(29);
  Cluster c = ingest_until(w, 8, /*rot=*/0);

  std::vector<std::unique_ptr<FollowerReplica>> fols;
  for (size_t i = 0; i < 3; ++i) fols.push_back(c.group->detach(0));
  c.group.reset();
  c.leader.reset();

  std::vector<const FollowerReplica*> cands = {fols[0].get(), fols[1].get(),
                                               fols[2].get()};
  const auto elect = elect_longest_log(cands);
  ASSERT_TRUE(elect.has_value());

  // Rot the winner's chain: every checkpoint file vanishes.
  const size_t dead = elect->winner;
  std::shared_ptr<Fs> dead_fs = fols[dead]->fs();
  const std::string dead_dir = fols[dead]->dir();
  for (const std::string& name : dead_fs->list(dead_dir))
    if (parse_checkpoint_file_name(name))
      ASSERT_TRUE(dead_fs->remove(dead_dir + "/" + name));

  const auto make_backend = backend_factory(w);
  EXPECT_EQ(promote_follower(std::move(fols[dead]), make_backend, nullptr),
            nullptr);

  // Re-run the election without the dead candidate; the runner-up promotes.
  cands[dead] = nullptr;
  const auto elect2 = elect_longest_log(cands);
  ASSERT_TRUE(elect2.has_value());
  EXPECT_NE(elect2->winner, dead);
  EXPECT_LE(elect2->durable_version, elect->durable_version);
  SpannerService::RecoveryReport rep;
  auto leader2 =
      promote_follower(std::move(fols[elect2->winner]), make_backend, &rep);
  ASSERT_NE(leader2, nullptr);
  EXPECT_EQ(rep.restored_version, elect2->durable_version);
  ASSERT_LT(rep.restored_version, c.oracle.size());
  EXPECT_EQ(rep.restored_checksum, c.oracle[rep.restored_version]);
}

// Election edge cases: null and stateless candidates never run; ties break
// to the lowest index; an all-dead slate is an honest nullopt.
TEST(FailoverSweep, ElectionEdgeCases) {
  const Workload w = make_workload(41);
  // rot=2 gives followers 0 and 1 cadences {3, 1}; after 6 batches both
  // cadence-1 and cadence-3 followers sit at durable 6 — a real tie.
  Cluster c = ingest_until(w, 6, /*rot=*/2);
  ASSERT_EQ(c.group->follower(0).durable_version(),
            c.group->follower(1).durable_version());

  auto stateless = std::make_unique<FollowerReplica>(
      std::make_shared<MemFs>(), "empty", DurabilityOptions{},
      std::make_shared<ChannelTransport>());
  ASSERT_FALSE(stateless->has_state());

  const auto elect = elect_longest_log(std::vector<const FollowerReplica*>{
      nullptr, stateless.get(), &c.group->follower(0),
      &c.group->follower(1)});
  ASSERT_TRUE(elect.has_value());
  EXPECT_EQ(elect->winner, 2u);  // lowest index among the tied pair
  EXPECT_EQ(elect->durable_version, c.group->follower(0).durable_version());

  EXPECT_FALSE(elect_longest_log(std::vector<const FollowerReplica*>{})
                   .has_value());
  EXPECT_FALSE(elect_longest_log(std::vector<const FollowerReplica*>{
                                     nullptr, stateless.get()})
                   .has_value());
}

}  // namespace
}  // namespace parspan
