// Tests for the batch-dynamic Even-Shiloach tree (Theorem 1.2).
//
// The main weapon is the randomized oracle test: delete random arc batches
// and after each batch compare distances/tree validity against a
// from-scratch bounded BFS (ESTree::check_invariants).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/es_tree.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

// Builds directed arcs (both directions) from undirected edges, keys are
// arbitrary distinct values (arc index).
struct ArcBuild {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  std::vector<uint64_t> keys;
  // arc ids per undirected edge: [2i], [2i+1]
  void add_undirected(const std::vector<Edge>& edges) {
    for (const Edge& e : edges) {
      arcs.push_back({e.u, e.v});
      keys.push_back(arcs.size());
      arcs.push_back({e.v, e.u});
      keys.push_back(arcs.size());
    }
  }
};

TEST(ESTree, InitDistancesOnPath) {
  auto edges = gen_path(10);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(10, b.arcs, b.keys, 0, 20);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(t.dist(v), v);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ESTree, DepthBoundCutsOff) {
  auto edges = gen_path(10);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(10, b.arcs, b.keys, 0, 4);
  EXPECT_EQ(t.dist(4), 4u);
  EXPECT_EQ(t.dist(5), 5u);  // = L+1: out of tree
  EXPECT_EQ(t.parent(5), kNoVertex);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ESTree, SingleDeletionReroutes) {
  // Cycle 0-1-2-3-0: deleting arc (0,1)+(1,0) makes dist(1) = 3 via 3,2.
  auto edges = gen_cycle(4);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(4, b.arcs, b.keys, 0, 10);
  EXPECT_EQ(t.dist(1), 1u);
  // Find arc ids of (0,1) and (1,0).
  std::vector<uint32_t> doomed;
  for (uint32_t a = 0; a < t.num_arcs(); ++a) {
    auto& arc = t.arc(a);
    if ((arc.src == 0 && arc.dst == 1) || (arc.src == 1 && arc.dst == 0))
      doomed.push_back(a);
  }
  auto rep = t.delete_arcs(doomed);
  EXPECT_EQ(t.dist(1), 3u);
  EXPECT_EQ(t.dist(2), 2u);
  EXPECT_EQ(t.dist(3), 1u);
  EXPECT_TRUE(t.check_invariants());
  bool saw_1 = false;
  for (auto& [v, old_arc] : rep.parent_changed) saw_1 |= (v == 1);
  EXPECT_TRUE(saw_1);
}

TEST(ESTree, DisconnectionDropsSubtree) {
  auto edges = gen_path(6);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(6, b.arcs, b.keys, 0, 10);
  // Delete both arcs of edge (2,3): vertices 3,4,5 leave the tree.
  std::vector<uint32_t> doomed;
  for (uint32_t a = 0; a < t.num_arcs(); ++a) {
    auto& arc = t.arc(a);
    if (edge_key(arc.src, arc.dst) == edge_key(2, 3)) doomed.push_back(a);
  }
  t.delete_arcs(doomed);
  EXPECT_EQ(t.dist(2), 2u);
  EXPECT_EQ(t.dist(3), 11u);
  EXPECT_EQ(t.dist(5), 11u);
  EXPECT_EQ(t.parent(4), kNoVertex);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ESTree, DoubleDeleteIgnored) {
  auto edges = gen_cycle(5);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(5, b.arcs, b.keys, 0, 10);
  t.delete_arcs({0, 1});
  auto rep = t.delete_arcs({0, 1});  // no-op
  EXPECT_TRUE(rep.parent_changed.empty());
  EXPECT_TRUE(t.check_invariants());
}

class ESTreeRandom : public ::testing::TestWithParam<
                         std::tuple<size_t, size_t, uint32_t, uint64_t>> {};

TEST_P(ESTreeRandom, BatchedDeletionsMatchBfsOracle) {
  auto [n, m, L, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(n, b.arcs, b.keys, 0, L);
  ASSERT_TRUE(t.check_invariants());

  Rng rng(seed ^ 0xfeed);
  std::vector<uint32_t> alive(t.num_arcs());
  for (uint32_t a = 0; a < alive.size(); ++a) alive[a] = a;
  // Shuffle undirected edge ids; delete both arcs of each edge together.
  std::vector<uint32_t> order(edges.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  size_t batch = 1 + rng.next_below(16);
  for (size_t lo = 0; lo < order.size(); lo += batch) {
    std::vector<uint32_t> doomed;
    for (size_t i = lo; i < std::min(order.size(), lo + batch); ++i) {
      doomed.push_back(2 * order[i]);
      doomed.push_back(2 * order[i] + 1);
    }
    t.delete_arcs(doomed);
    ASSERT_TRUE(t.check_invariants())
        << "n=" << n << " m=" << m << " L=" << L << " seed=" << seed
        << " after batch at " << lo;
  }
  // Everything deleted: only the source remains at distance 0.
  EXPECT_EQ(t.dist(0), 0u);
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(t.dist(v), L + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ESTreeRandom,
    ::testing::Values(
        std::make_tuple(size_t{30}, size_t{60}, uint32_t{5}, uint64_t{1}),
        std::make_tuple(size_t{30}, size_t{60}, uint32_t{30}, uint64_t{2}),
        std::make_tuple(size_t{50}, size_t{120}, uint32_t{8}, uint64_t{3}),
        std::make_tuple(size_t{50}, size_t{200}, uint32_t{50}, uint64_t{4}),
        std::make_tuple(size_t{80}, size_t{160}, uint32_t{10}, uint64_t{5}),
        std::make_tuple(size_t{80}, size_t{400}, uint32_t{4}, uint64_t{6}),
        std::make_tuple(size_t{120}, size_t{300}, uint32_t{15}, uint64_t{7}),
        std::make_tuple(size_t{17}, size_t{40}, uint32_t{3}, uint64_t{8})));

TEST(ESTree, PriorityOrderDeterminesParent) {
  // Diamond: 0->1, 0->2, 1->3, 2->3. Parent of 3 should be the in-arc with
  // the larger key.
  std::vector<std::pair<VertexId, VertexId>> arcs = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  std::vector<uint64_t> keys = {5, 6, 100, 50};  // arc (1,3) has higher key
  ESTree t;
  t.init(4, arcs, keys, 0, 5);
  EXPECT_EQ(t.parent(3), 1u);
  // Lower the key of arc 2 = (1,3) below arc 3 = (2,3): rescan switches.
  bool was_parent = t.update_arc_priority(2, 10);
  EXPECT_TRUE(was_parent);
  EXPECT_TRUE(t.rescan(3));
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ESTree, RescanNoChangeWhenStillBest) {
  std::vector<std::pair<VertexId, VertexId>> arcs = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  std::vector<uint64_t> keys = {5, 6, 100, 50};
  ESTree t;
  t.init(4, arcs, keys, 0, 5);
  // Drop parent's key but keep it above the alternative.
  t.update_arc_priority(2, 60);
  EXPECT_FALSE(t.rescan(3));
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ESTree, WorkCountersAccumulate) {
  auto edges = gen_erdos_renyi(100, 400, 9);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(100, b.arcs, b.keys, 0, 20);
  auto before = t.counters().treap_ops;
  t.delete_arcs({0, 1, 2, 3});
  EXPECT_GT(t.counters().treap_ops, before);
}

TEST(ESTree, ChildCascadeDepth) {
  // Long path: deleting the first edge forces the whole path out of the
  // tree — the cascade must touch every vertex exactly once per level.
  const size_t n = 200;
  auto edges = gen_path(n);
  ArcBuild b;
  b.add_undirected(edges);
  ESTree t;
  t.init(n, b.arcs, b.keys, 0, uint32_t(n));
  std::vector<uint32_t> doomed = {0, 1};  // both arcs of edge (0,1)
  auto rep = t.delete_arcs(doomed);
  EXPECT_TRUE(t.check_invariants());
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(t.dist(v), n + 1);
  EXPECT_EQ(rep.parent_changed.size(), n - 1);
}

}  // namespace
}  // namespace parspan
