// Tests for the Contract(G, x) layer (Lemma 4.1) and the nested-contraction
// sparse spanner (Theorem 1.3).
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/contraction.hpp"
#include "core/sparse_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

TEST(ContractionLayer, InitInvariantsAndLemma41Postconditions) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto edges = gen_erdos_renyi(100, 400, seed);
    ContractionLayer layer(100, edges, 4.0, seed * 13 + 1);
    EXPECT_TRUE(layer.check_invariants());
    EXPECT_GE(layer.next_n(), 1u);
    // f(y) = y for sampled vertices.
    for (VertexId v = 0; v < 100; ++v) {
      if (layer.is_sampled(v)) EXPECT_EQ(layer.head(v), v);
    }
    // Every contracted edge has a live representative with matching heads.
    for (const Edge& p : layer.next_edges()) {
      Edge r = layer.rep(p);
      VertexId hu = layer.head(r.u), hv = layer.head(r.v);
      ASSERT_NE(hu, kNoVertex);
      ASSERT_NE(hv, kNoVertex);
      EXPECT_EQ(edge_key(layer.next_id(hu), layer.next_id(hv)), p.key());
    }
  }
}

TEST(ContractionLayer, DeleteAllEdges) {
  auto edges = gen_erdos_renyi(40, 150, 7);
  ContractionLayer layer(40, edges, 3.0, 5);
  auto res = layer.update({}, edges);
  EXPECT_EQ(layer.alive_edges(), 0u);
  EXPECT_TRUE(layer.next_edges().empty());
  EXPECT_EQ(layer.h_size(), 0u);
  EXPECT_TRUE(layer.check_invariants());
}

class ContractionRandom
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double,
                                                 uint64_t>> {};

TEST_P(ContractionRandom, MixedStreamKeepsInvariants) {
  auto [n, m, x, seed] = GetParam();
  auto [initial, batches] = gen_mixed_stream(n, m, 24, 15, seed);
  ContractionLayer layer(n, initial, x, seed ^ 0xfeed);
  ASSERT_TRUE(layer.check_invariants());
  // Track the contracted graph against the layer's reports.
  std::unordered_set<EdgeKey> next_mat;
  for (const Edge& e : layer.next_edges()) next_mat.insert(e.key());
  std::unordered_set<EdgeKey> h_mat;
  for (const Edge& e : layer.h_edges()) h_mat.insert(e.key());

  for (auto& b : batches) {
    auto res = layer.update(b.insertions, b.deletions);
    for (const Edge& e : res.next_del) {
      ASSERT_TRUE(next_mat.count(e.key()));
      next_mat.erase(e.key());
    }
    for (const Edge& e : res.next_ins) {
      ASSERT_TRUE(!next_mat.count(e.key()));
      next_mat.insert(e.key());
    }
    for (const Edge& e : res.h_del) {
      ASSERT_TRUE(h_mat.count(e.key()));
      h_mat.erase(e.key());
    }
    for (const Edge& e : res.h_ins) {
      ASSERT_TRUE(!h_mat.count(e.key()));
      h_mat.insert(e.key());
    }
    ASSERT_TRUE(layer.check_invariants());
    // Materialized views agree.
    ASSERT_EQ(next_mat.size(), layer.next_edges().size());
    ASSERT_EQ(h_mat.size(), layer.h_size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContractionRandom,
    ::testing::Values(std::make_tuple(size_t{30}, size_t{100}, 2.0,
                                      uint64_t{1}),
                      std::make_tuple(size_t{50}, size_t{200}, 3.0,
                                      uint64_t{2}),
                      std::make_tuple(size_t{80}, size_t{240}, 5.0,
                                      uint64_t{3}),
                      std::make_tuple(size_t{25}, size_t{120}, 8.0,
                                      uint64_t{4})));

TEST(ContractionSchedule, ProductHitsTarget) {
  for (double target : {4.0, 10.0, 20.0, 200.0, 5000.0}) {
    auto xs = contraction_schedule(target);
    double prod = 1;
    for (double x : xs) {
      EXPECT_GE(x, 2.0);
      prod *= x;
    }
    EXPECT_GE(prod, target * 0.99);
  }
}

TEST(SparseSpanner, InitIsValidAndSparse) {
  const size_t n = 120;
  auto edges = gen_erdos_renyi(n, 1200, 3);
  SparseSpannerConfig cfg;
  cfg.seed = 17;
  SparseSpanner sp(n, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(n, edges, sp.spanner_edges(), sp.stretch_bound()))
      << "stretch_bound=" << sp.stretch_bound();
  // Theorem 1.3: O(n) edges — generous constant for small n.
  EXPECT_LE(sp.spanner_size(), 6 * n);
}

class SparseSpannerRandom
    : public ::testing::TestWithParam<std::tuple<size_t, size_t,
                                                 std::vector<double>,
                                                 uint64_t>> {};

TEST_P(SparseSpannerRandom, MixedStreamKeepsEverything) {
  auto [n, m, xs, seed] = GetParam();
  auto [initial, batches] = gen_mixed_stream(n, m, 20, 10, seed);
  SparseSpannerConfig cfg;
  cfg.seed = seed * 5 + 3;
  cfg.xs = xs;
  SparseSpanner sp(n, initial, cfg);
  ASSERT_TRUE(sp.check_invariants());

  std::unordered_set<EdgeKey> live, mat;
  for (const Edge& e : initial) live.insert(e.key());
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());

  for (auto& b : batches) {
    auto diff = sp.update(b.insertions, b.deletions);
    for (const Edge& e : b.deletions) live.erase(e.key());
    for (const Edge& e : b.insertions) live.insert(e.key());
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key()));
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key()));
      mat.insert(e.key());
    }
    ASSERT_EQ(mat.size(), sp.spanner_size());
    ASSERT_TRUE(sp.check_invariants());
    std::vector<Edge> alive;
    for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
    ASSERT_TRUE(is_spanner(n, alive, sp.spanner_edges(),
                           sp.stretch_bound()));
    for (const Edge& e : sp.spanner_edges())
      ASSERT_TRUE(live.count(e.key()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseSpannerRandom,
    ::testing::Values(
        std::make_tuple(size_t{40}, size_t{160}, std::vector<double>{},
                        uint64_t{1}),
        std::make_tuple(size_t{60}, size_t{300}, std::vector<double>{3.0},
                        uint64_t{2}),
        std::make_tuple(size_t{60}, size_t{300},
                        std::vector<double>{2.0, 2.0}, uint64_t{3}),
        std::make_tuple(size_t{80}, size_t{400},
                        std::vector<double>{3.0, 2.0, 2.0}, uint64_t{4}),
        std::make_tuple(size_t{30}, size_t{90}, std::vector<double>{4.0},
                        uint64_t{5})));

TEST(SparseSpanner, FullDeletionThenRebuild) {
  auto edges = gen_erdos_renyi(50, 250, 9);
  SparseSpannerConfig cfg;
  cfg.seed = 2;
  cfg.xs = {2.5, 2.0};
  SparseSpanner sp(50, edges, cfg);
  sp.delete_edges(edges);
  EXPECT_EQ(sp.spanner_size(), 0u);
  EXPECT_TRUE(sp.check_invariants());
  sp.insert_edges(edges);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(50, edges, sp.spanner_edges(), sp.stretch_bound()));
}

}  // namespace
}  // namespace parspan
