// Tests for DynamicGraph, generators and bounded BFS (Lemma 3.2 oracle).
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

TEST(DynamicGraph, InsertEraseBasics) {
  DynamicGraph g(5);
  auto ins = g.insert_edges({{0, 1}, {1, 2}, {1, 0}, {3, 3}, {0, 1}});
  EXPECT_EQ(ins.size(), 2u);  // {0,1} once, {1,2}; self-loop dropped
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  auto del = g.erase_edges({{1, 0}, {0, 2}});
  EXPECT_EQ(del.size(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(DynamicGraph, RandomizedAgainstSetOracle) {
  Rng rng(123);
  const size_t n = 60;
  DynamicGraph g(n);
  std::set<EdgeKey> oracle;
  for (int step = 0; step < 300; ++step) {
    std::vector<Edge> batch;
    for (int i = 0; i < 20; ++i) {
      VertexId u = VertexId(rng.next_below(n));
      VertexId v = VertexId(rng.next_below(n));
      if (u != v) batch.emplace_back(u, v);
    }
    if (rng.next_bool(0.5)) {
      auto applied = g.insert_edges(batch);
      std::set<EdgeKey> expect_applied;
      for (auto& e : batch)
        if (!oracle.count(e.key())) expect_applied.insert(e.key());
      EXPECT_EQ(applied.size(), expect_applied.size());
      for (auto& e : batch) oracle.insert(e.key());
    } else {
      auto applied = g.erase_edges(batch);
      std::set<EdgeKey> expect_applied;
      for (auto& e : batch)
        if (oracle.count(e.key())) expect_applied.insert(e.key());
      EXPECT_EQ(applied.size(), expect_applied.size());
      for (auto& e : batch) oracle.erase(e.key());
    }
    ASSERT_EQ(g.num_edges(), oracle.size());
  }
  // Final adjacency cross-check.
  for (EdgeKey k : oracle) {
    Edge e = edge_from_key(k);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
  auto edges = g.edges();
  EXPECT_EQ(edges.size(), oracle.size());
}

TEST(DynamicGraph, SelfLoopsAndOutOfRangeIgnored) {
  DynamicGraph g(4);
  auto ins = g.insert_edges({{0, 0}, {1, 1}, {0, 7}, {9, 1}, {2, 3}});
  EXPECT_EQ(ins.size(), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
  auto del = g.erase_edges({{0, 0}, {3, 9}, {3, 2}});
  EXPECT_EQ(del.size(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraph, InBatchDuplicatesApplyOnce) {
  DynamicGraph g(5);
  auto ins = g.insert_edges({{0, 1}, {1, 0}, {0, 1}, {4, 2}, {2, 4}});
  EXPECT_EQ(ins.size(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  auto del = g.erase_edges({{1, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(del.size(), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(DynamicGraph, DeleteThenReinsert) {
  DynamicGraph g(6);
  g.insert_edges({{0, 1}, {1, 2}, {2, 3}});
  g.erase_edges({{1, 2}});
  EXPECT_FALSE(g.has_edge(1, 2));
  auto ins = g.insert_edges({{2, 1}});
  EXPECT_EQ(ins.size(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 3u);
  // Positions stay consistent across several churn rounds on the same keys.
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(g.erase_edges({{0, 1}, {2, 3}}).size(), 2u);
    EXPECT_EQ(g.insert_edges({{0, 1}, {2, 3}}).size(), 2u);
  }
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(DynamicGraph, AbsentEdgeDeletesIgnored) {
  DynamicGraph g(5);
  g.insert_edges({{0, 1}});
  auto del = g.erase_edges({{2, 3}, {0, 2}, {0, 1}, {0, 1}});
  EXPECT_EQ(del.size(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  // Deleting from an empty graph is a no-op.
  EXPECT_TRUE(g.erase_edges({{0, 1}, {2, 3}}).empty());
}

TEST(DynamicGraph, SwapRemovalKeepsAdjacencyConsistent) {
  // Star around 0 forces swap-removal to relocate arcs inside adj_[0];
  // the moved neighbor's stored position must be repaired.
  const size_t n = 40;
  DynamicGraph g(n);
  std::vector<Edge> star;
  for (VertexId v = 1; v < n; ++v) star.emplace_back(0, v);
  g.insert_edges(star);
  Rng rng(77);
  std::set<EdgeKey> oracle;
  for (auto& e : star) oracle.insert(e.key());
  for (int step = 0; step < 50; ++step) {
    VertexId v = VertexId(1 + rng.next_below(n - 1));
    Edge e(0, v);
    if (oracle.count(e.key())) {
      EXPECT_EQ(g.erase_edges({e}).size(), 1u);
      oracle.erase(e.key());
    } else {
      EXPECT_EQ(g.insert_edges({e}).size(), 1u);
      oracle.insert(e.key());
    }
    ASSERT_EQ(g.num_edges(), oracle.size());
    for (VertexId w = 1; w < n; ++w)
      ASSERT_EQ(g.has_edge(0, w), oracle.count(edge_key(0, w)) > 0);
  }
}

TEST(Generators, ErdosRenyiCounts) {
  auto edges = gen_erdos_renyi(100, 500, 7);
  EXPECT_EQ(edges.size(), 500u);
  std::unordered_set<EdgeKey> keys;
  for (auto& e : edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    keys.insert(e.key());
  }
  EXPECT_EQ(keys.size(), 500u);
}

TEST(Generators, ErdosRenyiDenseClamps) {
  auto edges = gen_erdos_renyi(10, 1000, 7);
  EXPECT_EQ(edges.size(), 45u);  // complete graph
}

TEST(Generators, GridHasRightEdgeCount) {
  auto edges = gen_grid(5, 7);
  // 5*6 horizontal + 4*7 vertical = 30 + 28
  EXPECT_EQ(edges.size(), 58u);
}

TEST(Generators, RandomRegularDegreesBounded) {
  auto edges = gen_random_regular(200, 8, 3);
  std::vector<size_t> deg(200, 0);
  for (auto& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (size_t v = 0; v < 200; ++v) EXPECT_LE(deg[v], 8u);
  EXPECT_GE(edges.size(), 200u * 8 / 2 / 2);  // at least half survive dedup
}

TEST(Generators, DecrementalStreamCoversAllEdges) {
  auto edges = gen_erdos_renyi(50, 200, 11);
  auto batches = gen_decremental_stream(edges, 32, 5);
  size_t total = 0;
  std::unordered_set<EdgeKey> seen;
  for (auto& b : batches) {
    EXPECT_TRUE(b.insertions.empty());
    EXPECT_LE(b.deletions.size(), 32u);
    for (auto& e : b.deletions) seen.insert(e.key());
    total += b.deletions.size();
  }
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Generators, SlidingWindowConsistent) {
  auto [initial, batches] = gen_sliding_window(100, 2000, 500, 50, 10, 13);
  EXPECT_EQ(initial.size(), 500u);
  DynamicGraph g(100);
  g.insert_edges(initial);
  for (auto& b : batches) {
    auto ins = g.insert_edges(b.insertions);
    EXPECT_EQ(ins.size(), b.insertions.size());  // all new
    auto del = g.erase_edges(b.deletions);
    EXPECT_EQ(del.size(), b.deletions.size());  // all live
  }
}

TEST(Generators, MixedStreamKeepsInvariants) {
  auto [initial, batches] = gen_mixed_stream(80, 400, 40, 20, 17);
  DynamicGraph g(80);
  g.insert_edges(initial);
  for (auto& b : batches) {
    for (auto& e : b.deletions) EXPECT_TRUE(g.has_edge(e.u, e.v));
    g.erase_edges(b.deletions);
    for (auto& e : b.insertions) EXPECT_FALSE(g.has_edge(e.u, e.v));
    g.insert_edges(b.insertions);
  }
}

std::vector<uint32_t> serial_bfs(const DynamicGraph& g, VertexId s,
                                 uint32_t L) {
  std::vector<uint32_t> dist(g.num_vertices(), L + 1);
  std::queue<VertexId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    VertexId u = q.front();
    q.pop();
    if (dist[u] >= L) continue;
    for (VertexId w : g.neighbors(u)) {
      if (dist[w] == L + 1) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

TEST(BoundedBfs, MatchesSerialOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    DynamicGraph g(300);
    g.insert_edges(gen_erdos_renyi(300, 900, seed));
    for (uint32_t L : {1u, 3u, 10u, 300u}) {
      auto par = bounded_bfs(g, {0}, L);
      auto ser = serial_bfs(g, 0, L);
      EXPECT_EQ(par, ser) << "seed=" << seed << " L=" << L;
    }
  }
}

TEST(BoundedBfs, GridDistancesExact) {
  DynamicGraph g(25);
  g.insert_edges(gen_grid(5, 5));
  auto d = bounded_bfs(g, {0}, 8);
  for (size_t r = 0; r < 5; ++r)
    for (size_t c = 0; c < 5; ++c) EXPECT_EQ(d[r * 5 + c], r + c);
}

TEST(BoundedBfs, MultiSource) {
  DynamicGraph g(10);
  g.insert_edges(gen_path(10));
  auto d = bounded_bfs(g, {0, 9}, 10);
  for (size_t v = 0; v < 10; ++v)
    EXPECT_EQ(d[v], std::min(v, 9 - v));
}

TEST(BoundedBfs, UnreachableGetsLPlusOne) {
  DynamicGraph g(6);
  g.insert_edges({{0, 1}, {1, 2}});
  auto d = bounded_bfs(g, {0}, 4);
  EXPECT_EQ(d[3], 5u);
  EXPECT_EQ(d[4], 5u);
  auto full = bfs_distances(g, 0);
  EXPECT_EQ(full[3], kUnreached);
  EXPECT_EQ(full[2], 2u);
}

}  // namespace
}  // namespace parspan
