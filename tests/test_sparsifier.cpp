// Tests for the spectral sparsifier chain (Lemma 6.6) and the fully-dynamic
// wrapper (Theorem 1.6).
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "core/sparsifier.hpp"
#include "graph/generators.hpp"
#include "verify/laplacian.hpp"

namespace parspan {
namespace {

// Applies a weighted diff to a materialized (edge -> weight) map and checks
// consistency.
void apply_diff(std::map<std::pair<EdgeKey, double>, int>& mat,
                const WeightedDiff& d) {
  for (const WeightedEdge& we : d.removed) {
    auto it = mat.find({we.e.key(), we.w});
    ASSERT_TRUE(it != mat.end()) << "removing absent weighted edge";
    mat.erase(it);
  }
  for (const WeightedEdge& we : d.inserted) {
    auto ins = mat.emplace(std::pair<EdgeKey, double>{we.e.key(), we.w}, 1);
    ASSERT_TRUE(ins.second) << "inserting duplicate weighted edge";
  }
}

TEST(DecrementalSparsifier, InitStructureConsistent) {
  auto edges = gen_erdos_renyi(60, 500, 2);
  SparsifierConfig cfg;
  cfg.t = 2;
  cfg.seed = 11;
  DecrementalSparsifier sp(60, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_GT(sp.num_stages(), 0u);
  EXPECT_LE(sp.size(), edges.size());
  // Total weight should roughly preserve total edge mass (each stage
  // reweights by 1/rate to compensate sampling).
  double total = 0;
  for (const auto& we : sp.sparsifier_edges()) total += we.w;
  EXPECT_GT(total, 0.25 * double(edges.size()));
  EXPECT_LT(total, 6.0 * double(edges.size()));
}

TEST(DecrementalSparsifier, QualityImprovesWithT) {
  auto edges = gen_erdos_renyi(80, 1500, 3);
  double prev_err = 1e9;
  for (uint32_t t : {1u, 4u}) {
    SparsifierConfig cfg;
    cfg.t = t;
    cfg.seed = 19;
    DecrementalSparsifier sp(80, edges, cfg);
    auto q = sparsifier_quality(80, edges, sp.sparsifier_edges(), 30, 30,
                                123);
    // Not a strict monotonicity guarantee per-seed, but t=4 must be decent.
    if (t == 4) {
      EXPECT_LT(q.max_cut_err, 0.9);
      EXPECT_LT(q.max_form_err, 1.2);
    }
    prev_err = std::min(prev_err, q.max_cut_err);
  }
}

class SparsifierRandom
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint32_t,
                                                 size_t, uint64_t>> {};

TEST_P(SparsifierRandom, DecrementalDiffsConsistent) {
  auto [n, m, t, batch, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  SparsifierConfig cfg;
  cfg.t = t;
  cfg.seed = seed * 3 + 1;
  DecrementalSparsifier sp(n, edges, cfg);
  ASSERT_TRUE(sp.check_invariants());
  std::map<std::pair<EdgeKey, double>, int> mat;
  for (const auto& we : sp.sparsifier_edges())
    mat.emplace(std::pair<EdgeKey, double>{we.e.key(), we.w}, 1);

  auto stream = gen_decremental_stream(edges, batch, seed ^ 0xabc);
  std::unordered_set<EdgeKey> dead;
  for (auto& b : stream) {
    auto diff = sp.delete_edges(b.deletions);
    apply_diff(mat, diff);
    for (const Edge& e : b.deletions) dead.insert(e.key());
    ASSERT_EQ(mat.size(), sp.size());
    ASSERT_TRUE(sp.check_invariants());
    // No dead edge may remain in the sparsifier.
    for (const auto& we : sp.sparsifier_edges())
      ASSERT_FALSE(dead.count(we.e.key()));
  }
  EXPECT_EQ(sp.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparsifierRandom,
    ::testing::Values(
        std::make_tuple(size_t{25}, size_t{150}, uint32_t{2}, size_t{20},
                        uint64_t{1}),
        std::make_tuple(size_t{35}, size_t{250}, uint32_t{1}, size_t{35},
                        uint64_t{2}),
        std::make_tuple(size_t{30}, size_t{200}, uint32_t{3}, size_t{15},
                        uint64_t{3})));

TEST(FullyDynamicSparsifier, MixedStreamConsistent) {
  auto [initial, batches] = gen_mixed_stream(30, 150, 30, 8, 77);
  FullyDynamicSparsifierConfig cfg;
  cfg.stage.t = 2;
  cfg.seed = 5;
  FullyDynamicSparsifier sp(30, initial, cfg);
  ASSERT_TRUE(sp.check_invariants());
  std::map<std::pair<EdgeKey, double>, int> mat;
  for (const auto& we : sp.sparsifier_edges())
    mat.emplace(std::pair<EdgeKey, double>{we.e.key(), we.w}, 1);
  std::unordered_set<EdgeKey> live;
  for (const Edge& e : initial) live.insert(e.key());

  for (auto& b : batches) {
    auto diff = sp.update(b.insertions, b.deletions);
    apply_diff(mat, diff);
    for (const Edge& e : b.deletions) live.erase(e.key());
    for (const Edge& e : b.insertions) live.insert(e.key());
    ASSERT_EQ(live.size(), sp.num_edges());
    ASSERT_EQ(mat.size(), sp.size());
    ASSERT_TRUE(sp.check_invariants());
    for (const auto& we : sp.sparsifier_edges())
      ASSERT_TRUE(live.count(we.e.key()));
  }
}

TEST(FullyDynamicSparsifier, QualityOnStaticGraph) {
  auto edges = gen_erdos_renyi(60, 900, 9);
  FullyDynamicSparsifierConfig cfg;
  cfg.stage.t = 4;
  cfg.seed = 3;
  FullyDynamicSparsifier sp(60, edges, cfg);
  auto q = sparsifier_quality(60, edges, sp.sparsifier_edges(), 30, 30, 55);
  EXPECT_LT(q.max_cut_err, 0.9);
}

TEST(FullyDynamicSparsifier, EmptyAndTiny) {
  FullyDynamicSparsifierConfig cfg;
  FullyDynamicSparsifier sp(10, {}, cfg);
  EXPECT_EQ(sp.size(), 0u);
  auto d = sp.update({{0, 1}, {1, 2}}, {});
  EXPECT_EQ(sp.num_edges(), 2u);
  EXPECT_TRUE(sp.check_invariants());
  sp.update({}, {{0, 1}, {1, 2}});
  EXPECT_EQ(sp.size(), 0u);
  EXPECT_TRUE(sp.check_invariants());
}

}  // namespace
}  // namespace parspan
