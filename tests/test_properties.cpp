// Property-style parameterized sweeps across modules: invariants that must
// hold for every (structure, workload, seed) combination, beyond the
// targeted unit tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/cluster_spanner.hpp"
#include "core/es_tree.hpp"
#include "core/fully_dynamic_spanner.hpp"
#include "core/mpx_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

// ---------------------------------------------------------------------------
// Property: ES-tree distances are monotone non-decreasing under deletions.
// ---------------------------------------------------------------------------
class EsMonotone : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EsMonotone, DistancesNeverDecrease) {
  uint64_t seed = GetParam();
  const size_t n = 60;
  auto edges = gen_erdos_renyi(n, 240, seed);
  std::vector<std::pair<VertexId, VertexId>> arcs;
  std::vector<uint64_t> keys;
  for (const Edge& e : edges) {
    arcs.push_back({e.u, e.v});
    keys.push_back(arcs.size());
    arcs.push_back({e.v, e.u});
    keys.push_back(arcs.size());
  }
  ESTree t;
  t.init(n, arcs, keys, 0, 20);
  std::vector<uint32_t> prev(n);
  for (VertexId v = 0; v < n; ++v) prev[v] = t.dist(v);
  Rng rng(seed ^ 1);
  std::vector<uint32_t> order(edges.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  for (size_t lo = 0; lo < order.size(); lo += 24) {
    std::vector<uint32_t> doomed;
    for (size_t i = lo; i < std::min(order.size(), lo + 24); ++i) {
      doomed.push_back(2 * order[i]);
      doomed.push_back(2 * order[i] + 1);
    }
    t.delete_arcs(doomed);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_GE(t.dist(v), prev[v]) << "distance decreased at " << v;
      prev[v] = t.dist(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsMonotone,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// ---------------------------------------------------------------------------
// Property: the decremental cluster spanner's recourse matches its diffs —
// cumulative |diff| equals the symmetric difference of first/last spanner.
// Also: cluster priorities along tree paths are consistent (a vertex's
// cluster equals its tree root's cluster).
// ---------------------------------------------------------------------------
class ClusterConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterConsistency, ClusterEqualsRootCluster) {
  uint64_t seed = GetParam();
  const size_t n = 50;
  auto edges = gen_erdos_renyi(n, 220, seed);
  ClusterSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = seed * 3 + 5;
  DecrementalClusterSpanner sp(n, edges, cfg);
  auto check_roots = [&]() {
    for (VertexId v = 0; v < n; ++v) {
      // Walk parent pointers to the first path-vertex child: its cluster
      // must equal Cluster(v).
      VertexId w = v;
      int guard = 0;
      while (guard++ < int(2 * sp.t() + 2)) {
        VertexId p = sp.es().parent(w);
        ASSERT_NE(p, kNoVertex);
        if (p >= n) break;  // w is the cluster center
        w = p;
      }
      ASSERT_EQ(sp.cluster(v), w);
      ASSERT_EQ(sp.cluster(w), w);
    }
  };
  check_roots();
  auto stream = gen_decremental_stream(edges, 30, seed ^ 0xf00);
  for (auto& b : stream) {
    sp.delete_edges(b.deletions);
    check_roots();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterConsistency,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

// ---------------------------------------------------------------------------
// Property: fully-dynamic spanner handles adversarially structured (but
// oblivious) update patterns: re-inserting previously deleted edges,
// alternating dense/sparse phases.
// ---------------------------------------------------------------------------
class FdChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdChurn, DeleteReinsertWavesStayValid) {
  uint64_t seed = GetParam();
  const size_t n = 36;
  auto all = gen_erdos_renyi(n, 180, seed);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  cfg.seed = seed + 77;
  FullyDynamicSpanner sp(n, all, cfg);
  Rng rng(seed ^ 0xc0ffee);
  std::unordered_set<EdgeKey> live;
  for (auto& e : all) live.insert(e.key());
  for (int wave = 0; wave < 6; ++wave) {
    // Delete a random half, then re-insert a random subset of the dead.
    std::vector<Edge> dels, inss;
    for (auto& e : all) {
      bool alive = live.count(e.key()) > 0;
      if (alive && rng.next_bool(0.5)) {
        dels.push_back(e);
        live.erase(e.key());
      } else if (!alive && rng.next_bool(0.6)) {
        inss.push_back(e);
        live.insert(e.key());
      }
    }
    sp.update(inss, dels);
    ASSERT_TRUE(sp.check_invariants());
    ASSERT_EQ(sp.num_edges(), live.size());
    std::vector<Edge> alive;
    for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
    ASSERT_TRUE(is_spanner(n, alive, sp.spanner_edges(), 3));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdChurn,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

// ---------------------------------------------------------------------------
// Property: MonotoneSpanner diffs net to the symmetric difference.
// ---------------------------------------------------------------------------
class MonotoneDiffs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotoneDiffs, DiffsComposeExactly) {
  uint64_t seed = GetParam();
  const size_t n = 30;
  auto edges = gen_erdos_renyi(n, 120, seed);
  MonotoneSpannerConfig cfg;
  cfg.seed = seed * 13;
  cfg.instances = 8;
  MonotoneSpanner sp(n, edges, cfg);
  std::unordered_set<EdgeKey> mat;
  for (auto& e : sp.spanner_edges()) mat.insert(e.key());
  auto stream = gen_decremental_stream(edges, 17, seed ^ 3);
  for (auto& b : stream) {
    auto d = sp.delete_edges(b.deletions);
    for (auto& e : d.removed) ASSERT_EQ(mat.erase(e.key()), 1u);
    for (auto& e : d.inserted) ASSERT_TRUE(mat.insert(e.key()).second);
    std::unordered_set<EdgeKey> now;
    for (auto& e : sp.spanner_edges()) now.insert(e.key());
    ASSERT_EQ(mat, now);
  }
  ASSERT_TRUE(mat.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneDiffs,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

// ---------------------------------------------------------------------------
// Property: structured graphs (grid, cycle, regular) keep all invariants
// through full decremental runs at several k.
// ---------------------------------------------------------------------------
class StructuredGraphs
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(StructuredGraphs, FullDecrementalRun) {
  auto [shape, k] = GetParam();
  std::vector<Edge> edges;
  size_t n = 0;
  switch (shape) {
    case 0:
      n = 49;
      edges = gen_grid(7, 7);
      break;
    case 1:
      n = 40;
      edges = gen_cycle(40);
      break;
    case 2:
      n = 36;
      edges = gen_random_regular(36, 6, 5);
      break;
    default:
      n = 30;
      edges = gen_star(30);
  }
  ClusterSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 100 + shape;
  DecrementalClusterSpanner sp(n, edges, cfg);
  ASSERT_TRUE(sp.check_invariants());
  ASSERT_TRUE(is_spanner(n, edges, sp.spanner_edges(), 2 * k - 1));
  auto stream = gen_decremental_stream(edges, 11, 7 + shape);
  std::unordered_set<EdgeKey> dead;
  for (auto& b : stream) {
    sp.delete_edges(b.deletions);
    for (auto& e : b.deletions) dead.insert(e.key());
    ASSERT_TRUE(sp.check_invariants());
    std::vector<Edge> alive;
    for (auto& e : edges)
      if (!dead.count(e.key())) alive.push_back(e);
    ASSERT_TRUE(is_spanner(n, alive, sp.spanner_edges(), 2 * k - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StructuredGraphs,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(uint32_t{2}, uint32_t{3})));

}  // namespace
}  // namespace parspan
