// Net front door tests (DESIGN.md §13): wire-format goldens pinned to the
// byte, hostile-input rejection, and end-to-end protocol semantics over
// real loopback sockets — pipelining with out-of-order completion,
// flush read-your-writes, pinned-snapshot immutability, and queue-full
// RETRY_AFTER backpressure that never blocks an event loop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/sharded_service.hpp"

namespace parspan {
namespace {

using net::NetClient;
using net::NetServer;
using net::NetServerConfig;
using net::Op;
using net::Status;

std::unique_ptr<ShardedSpannerService> make_service(
    size_t n, const std::vector<Edge>& initial, uint32_t shards,
    ShardedConfig sc = {}) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  return ShardedSpannerService::single_graph(n, initial, shards, cfg, sc);
}

struct ServerFixture {
  std::unique_ptr<ShardedSpannerService> svc;
  std::unique_ptr<NetServer> server;

  explicit ServerFixture(std::unique_ptr<ShardedSpannerService> s,
                         NetServerConfig cfg = {})
      : svc(std::move(s)) {
    server = std::make_unique<NetServer>(*svc, cfg);
    EXPECT_TRUE(server->start());
  }
  uint16_t port() const { return server->port(); }
};

// --- Wire format goldens --------------------------------------------------
// Pinned byte-for-byte: these sequences are the §13.1 wire contract. A
// codec change that shifts ANY byte is a protocol break and must show up
// here, not in production cross-version traffic.

TEST(NetProtocol, HelloRequestGoldenBytes) {
  std::vector<uint8_t> got;
  net::encode_hello(got);
  // len=13 | crc | op=1 | magic "parspan1" LE | version=1
  const std::vector<uint8_t> want = {
      0x0d, 0x00, 0x00, 0x00, 0xca, 0xfe, 0x6e, 0xb9, 0x01, 0x70, 0x61,
      0x72, 0x73, 0x70, 0x61, 0x6e, 0x31, 0x01, 0x00, 0x00, 0x00};
  EXPECT_EQ(got, want);
}

TEST(NetProtocol, SubmitRequestGoldenBytes) {
  std::vector<uint8_t> got;
  net::encode_submit(got, 0, {Edge(1, 2).key(), Edge(2, 3).key()},
                     {Edge(0, 1).key()});
  // op=2 | graph=0 | icnt=2 | dcnt=1 | ins varint-delta {0x100000002:
  // [82 80 80 80 10], +0x100000001: [81 80 80 80 10]} | del {1: [01]}
  const std::vector<uint8_t> want = {
      0x18, 0x00, 0x00, 0x00, 0x84, 0x55, 0x50, 0xd4, 0x02, 0x00, 0x00,
      0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x82,
      0x80, 0x80, 0x80, 0x10, 0x81, 0x80, 0x80, 0x80, 0x10, 0x01};
  EXPECT_EQ(got, want);
}

TEST(NetProtocol, ResponseGoldenBytes) {
  std::vector<uint8_t> ok;
  net::append_ok(ok, 7, net::build_vv_body({3, 4}));
  // seq=7 | status=0 | cnt=2 | 3 u64 | 4 u64
  const std::vector<uint8_t> want_ok = {
      0x19, 0x00, 0x00, 0x00, 0xb7, 0xc0, 0x5d, 0x8b, 0x07, 0x00, 0x00,
      0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(ok, want_ok);

  std::vector<uint8_t> retry;
  net::append_retry_after(retry, 9, 10);
  // seq=9 | status=1 | retry_after_ms=10
  const std::vector<uint8_t> want_retry = {0x09, 0x00, 0x00, 0x00, 0xb7, 0x63,
                                           0x9a, 0x86, 0x09, 0x00, 0x00, 0x00,
                                           0x01, 0x0a, 0x00, 0x00, 0x00};
  EXPECT_EQ(retry, want_retry);
}

TEST(NetProtocol, RequestRoundTripsEveryOp) {
  const std::vector<EdgeKey> ins = {Edge(1, 2).key(), Edge(5, 9).key()};
  const std::vector<EdgeKey> del = {Edge(3, 4).key()};
  std::vector<uint8_t> buf;
  net::encode_submit_for(buf, 7, ins, del, 250);
  net::encode_pin(buf, {11, 22});
  net::encode_bounded_bfs(buf, 42, 3, 8, 6);
  net::encode_stats(buf);

  size_t off = 0;
  auto next = [&]() -> net::Request {
    FrameView fv;
    EXPECT_EQ(parse_frame(buf.data() + off, buf.size() - off, kMaxFramePayload,
                          &fv),
              FrameParse::kOk);
    net::Request req;
    EXPECT_TRUE(net::decode_request(fv.payload, fv.len, &req));
    off += fv.consumed;
    return req;
  };

  net::Request r = next();
  EXPECT_EQ(r.op, Op::kSubmitFor);
  EXPECT_EQ(r.graph_id, 7u);
  EXPECT_EQ(r.timeout_ms, 250u);
  EXPECT_EQ(r.insertions, ins);
  EXPECT_EQ(r.deletions, del);
  r = next();
  EXPECT_EQ(r.op, Op::kPin);
  EXPECT_EQ(r.vv, (std::vector<uint64_t>{11, 22}));
  r = next();
  EXPECT_EQ(r.op, Op::kBoundedBfs);
  EXPECT_EQ(r.pin_id, 42u);
  EXPECT_EQ(r.u, 3u);
  EXPECT_EQ(r.v, 8u);
  EXPECT_EQ(r.limit, 6u);
  r = next();
  EXPECT_EQ(r.op, Op::kStats);
  EXPECT_EQ(off, buf.size());
}

// CRC32C catches every single-bit flip: no flipped request frame may ever
// parse — each position must yield kBad (or kNeedMore when the length
// field inflates), never a silently different request.
TEST(NetProtocol, EveryBitFlipIsRejected) {
  std::vector<uint8_t> frame;
  net::encode_submit(frame, 1, {Edge(2, 6).key()}, {});
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = frame;
      mutated[byte] ^= uint8_t(1u << bit);
      FrameView fv;
      const FrameParse p = parse_frame(mutated.data(), mutated.size(),
                                       kMaxFramePayload, &fv);
      EXPECT_NE(p, FrameParse::kOk)
          << "bit flip at byte " << byte << " bit " << bit << " parsed";
    }
  }
  // Truncations: every proper prefix is kNeedMore (streaming), never kOk.
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameView fv;
    EXPECT_EQ(parse_frame(frame.data(), len, kMaxFramePayload, &fv),
              FrameParse::kNeedMore);
  }
}

TEST(NetProtocol, NonAscendingKeyListRejected) {
  // Hand-build a kSubmit whose two "ascending" keys have a zero delta —
  // the decoder must prove ascent, not trust the count.
  std::vector<uint8_t> payload = {uint8_t(Op::kSubmit)};
  put_le32(payload, 0);  // graph
  put_le32(payload, 2);  // icnt
  put_le32(payload, 0);  // dcnt
  payload.push_back(0x05);  // key 5
  payload.push_back(0x00);  // delta 0 — duplicate key
  net::Request req;
  EXPECT_FALSE(net::decode_request(payload.data(), uint32_t(payload.size()),
                                   &req));
}

// --- End-to-end over loopback sockets -------------------------------------

TEST(NetServer, HelloQueriesAndStatsOverTheWire) {
  // Path 0-1-2-3 plus a spoke 1-5: known composed-query answers.
  ServerFixture fx(make_service(
      64, {Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(1, 5)}, 2));
  auto client = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(client->info().num_shards, 2u);
  EXPECT_TRUE(client->info().single_graph);
  EXPECT_EQ(client->info().vertex_space, 64u);

  EXPECT_EQ(client->has_edge(0, 1, 2), std::optional<bool>(true));
  EXPECT_EQ(client->has_edge(0, 0, 3), std::optional<bool>(false));
  auto nbrs = client->neighbors(0, 1);
  ASSERT_TRUE(nbrs.has_value());
  EXPECT_EQ(*nbrs, (std::vector<VertexId>{0, 2, 5}));
  // k=2 spanner of a tree is the tree: spanner distance == hop distance.
  EXPECT_EQ(client->bounded_bfs(0, 0, 3, 8), std::optional<uint32_t>(3));
  EXPECT_EQ(client->bounded_bfs(0, 0, 3, 2),
            std::optional<uint32_t>(kSnapshotUnreached));

  auto stats = client->stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->hello.num_shards, 2u);
  EXPECT_EQ(stats->edges_ingested, 0u);  // initial edges are construction
  EXPECT_EQ(stats->protocol_errors, 0u);
  EXPECT_EQ(stats->active_connections, 1u);

  // Semantic refusals are responses, not disconnects: the SAME connection
  // keeps serving afterwards.
  EXPECT_EQ(client->has_edge(999, 1, 2), std::nullopt);  // unknown pin
  EXPECT_EQ(client->has_edge(0, 1, 2), std::optional<bool>(true));
}

TEST(NetServer, SubmitFlushReadYourWritesAndPinByVersionVector) {
  ServerFixture fx(make_service(64, {}, 2));
  auto client = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(client.has_value());

  auto r = client->submit(0, {Edge(4, 7), Edge(40, 41)}, {});
  EXPECT_EQ(r.status, Status::kOk);
  auto vv = client->flush();
  ASSERT_TRUE(vv.has_value());
  ASSERT_EQ(vv->size(), 2u);

  // Pin by the flush-returned vector: monotone versions make it
  // immediately pinnable (§13.3) — and the pinned view must already hold
  // the writes the barrier covered.
  auto pin = client->pin(*vv);
  ASSERT_EQ(pin.status, Status::kOk);
  EXPECT_GE(pin.pin.versions.size(), 2u);
  EXPECT_EQ(client->has_edge(pin.pin.id, 4, 7), std::optional<bool>(true));
  EXPECT_EQ(client->has_edge(pin.pin.id, 40, 41), std::optional<bool>(true));

  // A version vector no shard has published yet is protocol backpressure,
  // not a parked thread.
  std::vector<uint64_t> future = *vv;
  future[0] += 100;
  EXPECT_EQ(client->pin(future).status, Status::kRetryAfter);

  // The WRONG shard count can never become pinnable: that is a permanent
  // kError, not kRetryAfter — kRetryAfter's "retry the SAME request"
  // contract would loop a conforming client forever.
  EXPECT_EQ(client->pin({vv->at(0)}).status, Status::kError);
  EXPECT_EQ(client->pin({1, 2, 3}).status, Status::kError);

  EXPECT_TRUE(client->unpin(pin.pin.id));
  EXPECT_FALSE(client->unpin(pin.pin.id));  // double-unpin refused
}

TEST(NetServer, PinnedSnapshotImmutableAcrossLaterPublishes) {
  ServerFixture fx(make_service(64, {Edge(1, 2)}, 2));
  auto client = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(client.has_value());

  auto pin = client->pin();
  ASSERT_EQ(pin.status, Status::kOk);

  // Publish more edges AFTER the pin, through a second connection.
  auto writer = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(writer.has_value());
  EXPECT_EQ(writer->submit(0, {Edge(2, 9), Edge(33, 34)}, {}).status,
            Status::kOk);
  ASSERT_TRUE(writer->flush().has_value());

  // The pinned view is frozen at pin time; pin 0 sees the new world.
  EXPECT_EQ(client->has_edge(pin.pin.id, 2, 9), std::optional<bool>(false));
  EXPECT_EQ(client->has_edge(pin.pin.id, 1, 2), std::optional<bool>(true));
  EXPECT_EQ(client->has_edge(0, 2, 9), std::optional<bool>(true));
}

// Torn/truncated/bit-flipped frames kill exactly the offending
// connection — the loop survives, counts a protocol error, and keeps
// serving other (and future) connections.
TEST(NetServer, CorruptFramesCloseConnectionWithoutCrashingLoop) {
  ServerFixture fx(make_service(64, {Edge(1, 2)}, 2),
                   [] {
                     NetServerConfig c;
                     c.num_loops = 1;  // everything shares ONE loop
                     return c;
                   }());
  auto survivor = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(survivor.has_value());

  std::vector<uint8_t> hello;
  net::encode_hello(hello);
  struct Case {
    const char* name;
    std::vector<uint8_t> bytes;
  };
  std::vector<Case> cases;
  {
    std::vector<uint8_t> flipped = hello;
    flipped[kFrameHeaderSize + 3] ^= 0x40;  // payload bit flip: CRC mismatch
    cases.push_back({"bit-flip", flipped});
  }
  {
    std::vector<uint8_t> bad_len = hello;
    bad_len[3] = 0x7F;  // length claim far above max_frame_payload
    cases.push_back({"hostile-length", bad_len});
  }
  {
    // Valid frame whose payload is not a decodable request.
    std::vector<uint8_t> garbage;
    const uint8_t junk[] = {0xFF, 0x01, 0x02};
    append_frame(garbage, junk, sizeof(junk));
    cases.push_back({"undecodable", garbage});
  }

  const auto before = fx.server->stats().protocol_errors;
  for (const Case& c : cases) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << c.name;
    ASSERT_EQ(::write(fd, c.bytes.data(), c.bytes.size()),
              ssize_t(c.bytes.size()));
    // The server must CLOSE this connection: read blocks until EOF/reset.
    uint8_t buf[64];
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    EXPECT_LE(r, 0) << c.name << ": server answered a corrupt frame";
    ::close(fd);
  }
  EXPECT_GE(fx.server->stats().protocol_errors, before + cases.size());

  // The shared loop kept serving: the pre-existing connection still
  // answers, and a brand-new connection still handshakes.
  EXPECT_EQ(survivor->has_edge(0, 1, 2), std::optional<bool>(true));
  auto fresh = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->has_edge(0, 1, 2), std::optional<bool>(true));
}

// Pipelining: many requests per connection in one write, responses
// matched by seq; multiple connections interleaved on the same loops.
TEST(NetServer, MultiConnectionPipelining) {
  ServerFixture fx(make_service(64, {Edge(0, 1), Edge(1, 2)}, 2));
  constexpr int kClients = 4;
  constexpr int kBurst = 32;
  std::vector<NetClient> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = NetClient::connect("127.0.0.1", fx.port());
    ASSERT_TRUE(c.has_value());
    clients.push_back(std::move(*c));
  }
  for (auto& c : clients) {
    std::vector<uint8_t> burst;
    std::vector<uint32_t> want_seqs;
    for (int i = 0; i < kBurst; ++i) {
      want_seqs.push_back(c.take_seq());
      if (i % 3 == 0)
        net::encode_has_edge(burst, 0, 0, 1);
      else if (i % 3 == 1)
        net::encode_neighbors(burst, 0, 1);
      else
        net::encode_bounded_bfs(burst, 0, 0, 2, 4);
    }
    ASSERT_TRUE(c.send_bytes(burst));
    std::map<uint32_t, Status> got;
    for (int i = 0; i < kBurst; ++i) {
      auto resp = c.recv_response();
      ASSERT_TRUE(resp.has_value());
      EXPECT_TRUE(got.emplace(resp->seq, resp->status).second)
          << "duplicate seq " << resp->seq;
    }
    for (uint32_t seq : want_seqs) {
      ASSERT_TRUE(got.count(seq)) << "missing response for seq " << seq;
      EXPECT_EQ(got[seq], Status::kOk);
    }
  }
}

// Queue-full backpressure is a protocol answer, never a blocked loop: a
// wedged shard queue yields kRetryAfter while the SAME loop keeps
// answering queries; a parked kSubmitFor completes out of order once
// capacity frees, and expires to kRetryAfter when it doesn't.
TEST(NetServer, RetryAfterBackpressureAndParkedSubmitFor) {
  ShardedConfig sc;
  sc.queue_capacity = 1;
  sc.start_paused = true;
  ServerFixture fx(make_service(64, {}, 1, sc),
                   [] {
                     NetServerConfig c;
                     c.num_loops = 1;
                     c.retry_after_ms = 7;
                     return c;
                   }());
  auto writer = NetClient::connect("127.0.0.1", fx.port());
  auto reader = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(writer.has_value() && reader.has_value());

  // Wedge the single shard queue (capacity 1, paused: nothing drains).
  EXPECT_EQ(writer->submit(0, {Edge(1, 2)}, {}).status, Status::kOk);

  // Immediate pushback with the configured hint — not a blocked loop.
  auto r = writer->submit(0, {Edge(3, 4)}, {});
  EXPECT_EQ(r.status, Status::kRetryAfter);
  EXPECT_EQ(r.retry_after_ms, 7u);

  // A bounded submit_for against the still-wedged queue expires into
  // kRetryAfter after ~timeout (the parked path's deadline).
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(writer->submit_for(0, {Edge(3, 4)}, {}, 50).status,
            Status::kRetryAfter);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(45));

  // Park a long submit_for, then PROVE the loop is not blocked: the
  // other connection's queries answer while the submit is parked.
  std::vector<uint8_t> parked;
  const uint32_t parked_seq = writer->take_seq();
  net::encode_submit_for(parked, 0, {Edge(5, 6).key()}, {}, 2000);
  ASSERT_TRUE(writer->send_bytes(parked));
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(reader->has_edge(0, 1, 2), std::optional<bool>(false));

  // Resume drains the queue; the parked request admits and completes.
  fx.svc->resume();
  auto resp = writer->recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->seq, parked_seq);
  EXPECT_EQ(resp->status, Status::kOk);

  ASSERT_TRUE(writer->flush().has_value());
  EXPECT_EQ(reader->has_edge(0, 5, 6), std::optional<bool>(true));
}

// Out-of-order completion under pipelining: a parked submit_for's
// response arrives AFTER responses to queries pipelined behind it, with
// seqs proving which is which.
TEST(NetServer, DeferredResponsesCompleteOutOfOrder) {
  ShardedConfig sc;
  sc.queue_capacity = 1;
  sc.start_paused = true;
  ServerFixture fx(make_service(64, {}, 1, sc));
  auto client = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(client.has_value());

  EXPECT_EQ(client->submit(0, {Edge(1, 2)}, {}).status, Status::kOk);

  // One write: [parked submit_for | has_edge | has_edge].
  std::vector<uint8_t> burst;
  const uint32_t submit_seq = client->take_seq();
  net::encode_submit_for(burst, 0, {Edge(7, 8).key()}, {}, 2000);
  const uint32_t q1_seq = client->take_seq();
  net::encode_has_edge(burst, 0, 7, 8);
  const uint32_t q2_seq = client->take_seq();
  net::encode_has_edge(burst, 0, 1, 2);
  ASSERT_TRUE(client->send_bytes(burst));

  // The queries answer first — the parked submit can't (queue wedged).
  auto r1 = client->recv_response();
  auto r2 = client->recv_response();
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_EQ(r1->seq, q1_seq);
  EXPECT_EQ(r2->seq, q2_seq);

  fx.svc->resume();
  auto r3 = client->recv_response();
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->seq, submit_seq);
  EXPECT_EQ(r3->status, Status::kOk);
}

// A parked kSubmitFor's retries must count each edge EXACTLY once: the
// RoutedBatch carries per-shard admission state, so a retry tick neither
// re-counts the shards that already admitted (edges_ingested) nor charges
// the still-full shard before the deadline. Pre-fix, every 2ms tick
// re-ran the full submit, inflating both counters ~timeout/tick_ms times.
TEST(NetServer, ParkedRetriesCountEdgesExactlyOnce) {
  ShardedConfig sc;
  sc.queue_capacity = 2;
  sc.start_paused = true;
  ServerFixture fx(make_service(64, {}, 2, sc),
                   [] {
                     NetServerConfig c;
                     c.num_loops = 1;
                     return c;
                   }());
  auto client = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(client.has_value());

  // Wedge shard 0 (vertices 0..31): two distinct keys reach its admission
  // bound, and the paused service never drains them.
  EXPECT_EQ(client->submit(0, {Edge(1, 2), Edge(3, 4)}, {}).status,
            Status::kOk);

  // Cross-shard batch: shard 1's two edges admit on the first try; shard
  // 0's edge parks through ~40 retry ticks and then expires.
  EXPECT_EQ(client
                ->submit_for(0, {Edge(5, 6), Edge(40, 41), Edge(42, 43)}, {},
                             80)
                .status,
            Status::kRetryAfter);
  EXPECT_EQ(fx.svc->edges_ingested(), 4u);   // 2 wedge + 2 shard-1, once
  EXPECT_EQ(fx.svc->edges_timed_out(), 1u);  // Edge(5,6), once, at expiry

  // Park again and free capacity mid-park: late admission through the
  // retry path also counts exactly once.
  std::thread unwedge([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fx.svc->resume();
  });
  EXPECT_EQ(client->submit_for(0, {Edge(7, 8)}, {}, 2000).status,
            Status::kOk);
  unwedge.join();
  EXPECT_EQ(fx.svc->edges_ingested(), 5u);
  EXPECT_EQ(fx.svc->edges_timed_out(), 1u);
}

// A peer that resets its connection while the server still owes it
// responses must surface as a dead connection, never SIGPIPE: before the
// MSG_NOSIGNAL fix, the server's write could raise SIGPIPE (default
// action: terminate), making every remote client a process kill switch.
// Hammer the race window: pipeline work, then RST-close without reading.
TEST(NetServer, PeerResetWhileResponsesPendingDoesNotKillProcess) {
  ServerFixture fx(make_service(64, {Edge(1, 2)}, 2),
                   [] {
                     NetServerConfig c;
                     c.num_loops = 1;
                     return c;
                   }());
  for (int round = 0; round < 32; ++round) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::vector<uint8_t> burst;
    net::encode_hello(burst);
    for (int i = 0; i < 128; ++i) net::encode_neighbors(burst, 0, 1);
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
              ssize_t(burst.size()));
    // Alternate timing to widen race coverage: sometimes the RST lands
    // while the server is still mid-burst, sometimes mid-flush.
    if (round % 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // SO_LINGER(0) turns close() into an immediate RST: everything the
    // server writes from here on hits a reset socket.
    linger lg{1, 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  }
  // The process survived every reset, and the loop still serves.
  auto fresh = NetClient::connect("127.0.0.1", fx.port());
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->has_edge(0, 1, 2), std::optional<bool>(true));
}

TEST(NetServer, StopClosesConnectionsAndRestartWorks) {
  auto svc = make_service(64, {Edge(1, 2)}, 2);
  auto server = std::make_unique<NetServer>(*svc);
  ASSERT_TRUE(server->start());
  auto client = NetClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(client->has_edge(0, 1, 2), std::optional<bool>(true));

  server->stop();
  // The client observes the close instead of hanging.
  EXPECT_EQ(client->has_edge(0, 1, 2), std::nullopt);

  // A fresh server over the same service serves again.
  NetServer second(*svc);
  ASSERT_TRUE(second.start());
  auto c2 = NetClient::connect("127.0.0.1", second.port());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->has_edge(0, 1, 2), std::optional<bool>(true));
}

}  // namespace
}  // namespace parspan
