// Stress suite for the in-repo work-stealing scheduler (DESIGN.md §12).
//
// These tests deliberately target the scheduler's hard cases: nested
// fork-join under stealing, steal-vs-complete races on the last deque slot,
// the park/doorbell protocol (lost-wakeup hunting), exception propagation
// through abandoned loop chunks, and the fixed-shape reduce tree that keeps
// non-commutative float sums byte-identical across worker counts. CI runs
// this binary under the `concurrency` label with `--repeat until-fail:3`
// and under TSan with 4 real workers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"

namespace parspan {
namespace {

/// RAII worker-count override so a test can force a parallelism level
/// without leaking it into the rest of the binary.
class WorkerGuard {
 public:
  explicit WorkerGuard(int p) : prev_(num_workers()) { set_num_workers(p); }
  ~WorkerGuard() { set_num_workers(prev_); }

 private:
  int prev_;
};

TEST(SchedulerTest, TripCountOneSpawnsNothing) {
  WorkerGuard guard(4);
  Scheduler& s = Scheduler::instance();
  uint64_t before = s.tasks_spawned();
  int hits = 0;
  parallel_for(0, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  // Pinned contract (parallel_for.hpp): a trip count of 1 runs inline on
  // the calling thread and never touches the scheduler.
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(s.tasks_spawned(), before);

  // Same with an explicit grain — the n==1 fast path wins over grain=1.
  before = s.tasks_spawned();
  parallel_for(5, 6, [&](size_t) { ++hits; }, /*grain=*/1);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.tasks_spawned(), before);
}

TEST(SchedulerTest, EveryIndexExactlyOnce) {
  WorkerGuard guard(4);
  constexpr size_t kN = 200000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  parallel_for(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
}

TEST(SchedulerTest, NestedForkJoinDepth) {
  WorkerGuard guard(4);
  // Three levels of parallel_for nesting with grain=1 at the top so every
  // outer iteration is its own task: inner loops must steal from the same
  // pool (not oversubscribe) and inner joins must not swallow sibling
  // outer tasks (help_one excludes root tasks; fork-join helping is safe
  // because every helped task belongs to some join that waits for it).
  constexpr size_t kOuter = 16, kMid = 32, kInner = 64;
  std::atomic<uint64_t> sum{0};
  parallel_for(
      0, kOuter,
      [&](size_t a) {
        parallel_for(
            0, kMid,
            [&](size_t b) {
              parallel_for(
                  0, kInner,
                  [&](size_t c) {
                    sum.fetch_add(a * kMid * kInner + b * kInner + c,
                                  std::memory_order_relaxed);
                  },
                  /*grain=*/1);
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  constexpr uint64_t kTotal = kOuter * kMid * kInner;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(SchedulerTest, StealVersusCompleteRace) {
  WorkerGuard guard(4);
  // Many short rounds of tiny loops: each round drains its deques to
  // near-empty, so pop and steal repeatedly contend for the LAST element —
  // the CAS arbitration path of the Chase-Lev deque. Executing an index
  // twice (both sides "win") or zero times (both sides lose) shows up as a
  // count mismatch.
  constexpr int kRounds = 400;
  constexpr size_t kN = 64;
  for (int r = 0; r < kRounds; ++r) {
    std::atomic<uint32_t> count{0};
    parallel_for(
        0, kN, [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); },
        /*grain=*/1);
    ASSERT_EQ(count.load(), kN) << "round " << r;
  }
}

TEST(SchedulerTest, ParkWakeLostWakeupHunt) {
  WorkerGuard guard(4);
  // Alternate compute bursts with idle gaps long enough for workers to
  // park, then hit the doorbell again from an external thread. A lost
  // wakeup (push races park, nobody rings) leaves the loop's join waiting
  // forever — caught by the ctest TIMEOUT, and by TSan as a deadlock.
  constexpr int kRounds = 60;
  for (int r = 0; r < kRounds; ++r) {
    std::atomic<uint64_t> acc{0};
    parallel_for(
        0, 256,
        [&](size_t i) { acc.fetch_add(i, std::memory_order_relaxed); },
        /*grain=*/1);
    EXPECT_EQ(acc.load(), 256u * 255u / 2);
    if (r % 4 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(SchedulerTest, ConcurrentExternalSubmitters) {
  WorkerGuard guard(4);
  // Several external threads drive independent loops through the shared
  // pool at once — the service layer's shape (each drain is a root task
  // that fans out nested parallel work).
  constexpr int kThreads = 4;
  constexpr size_t kN = 20000;
  std::vector<std::thread> threads;
  std::vector<uint64_t> results(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint32_t> data(kN);
      parallel_for(0, kN, [&](size_t i) {
        data[i] = uint32_t(i) * 2654435761u + uint32_t(t);
      });
      uint64_t sum = 0;
      for (uint32_t x : data) sum += x;
      results[size_t(t)] = sum;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    uint64_t expect = 0;
    for (size_t i = 0; i < kN; ++i)
      expect += uint32_t(i) * 2654435761u + uint32_t(t);
    EXPECT_EQ(results[size_t(t)], expect) << "thread " << t;
  }
}

TEST(SchedulerTest, ExceptionPropagatesFromWorkerChunk) {
  WorkerGuard guard(4);
  constexpr size_t kN = 100000;
  std::atomic<uint32_t> ran{0};
  bool caught = false;
  try {
    parallel_for(
        0, kN,
        [&](size_t i) {
          if (i == kN / 2) throw std::runtime_error("boom at midpoint");
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/64);
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "boom at midpoint");
  }
  EXPECT_TRUE(caught);
  // Abandoned chunks may skip work, but never run an index twice.
  EXPECT_LT(ran.load(), kN);

  // The scheduler must be fully usable after an exceptional loop.
  std::atomic<uint32_t> after{0};
  parallel_for(0, 1000, [&](size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  }, /*grain=*/1);
  EXPECT_EQ(after.load(), 1000u);
}

TEST(SchedulerTest, ExceptionPropagatesFromReduce) {
  WorkerGuard guard(4);
  EXPECT_THROW(
      parallel_reduce(
          size_t{0}, size_t{100000}, uint64_t{0},
          [](size_t i) -> uint64_t {
            if (i == 77777) throw std::logic_error("reduce leaf failed");
            return i;
          },
          [](uint64_t a, uint64_t b) { return a + b; }, /*grain=*/128),
      std::logic_error);
}

TEST(SchedulerTest, ReduceFloatDeterministicAcrossWorkerCounts) {
  // Non-commutative-in-practice float addition: the reduce tree's shape is
  // f(n, grain) only, so every worker count — including the pure serial
  // path — must produce bit-identical sums (DESIGN.md §12.4).
  constexpr size_t kN = 150000;
  std::vector<float> xs(kN);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& x : xs) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = float(state >> 40) * 1e-6f - 8.0f;
  }
  auto run = [&](int p) {
    WorkerGuard guard(p);
    return parallel_reduce(
        size_t{0}, kN, 0.0f, [&](size_t i) { return xs[i]; },
        [](float a, float b) { return a + b; }, /*grain=*/256);
  };
  float serial = run(1);
  float two = run(2);
  float four = run(4);
  EXPECT_EQ(std::bit_cast<uint32_t>(serial), std::bit_cast<uint32_t>(two));
  EXPECT_EQ(std::bit_cast<uint32_t>(serial), std::bit_cast<uint32_t>(four));
  // Sanity: the naive left fold DIFFERS from the tree sum for this data —
  // i.e. the test would notice a shape change.
  float naive = 0.0f;
  for (float x : xs) naive += x;
  EXPECT_NE(std::bit_cast<uint32_t>(serial), std::bit_cast<uint32_t>(naive));
}

TEST(SchedulerTest, ReduceFoldsInitExactlyOnce) {
  WorkerGuard guard(4);
  // Sum with a recognizable init: if any leaf re-seeded from init the
  // total would overshoot by a multiple of it.
  constexpr size_t kN = 50000;
  uint64_t got = parallel_reduce(
      size_t{0}, kN, uint64_t{1000000000000ull},
      [](size_t i) { return uint64_t(i); },
      [](uint64_t a, uint64_t b) { return a + b; }, /*grain=*/64);
  EXPECT_EQ(got, 1000000000000ull + uint64_t(kN) * (kN - 1) / 2);
}

TEST(SchedulerTest, SortAndScanUnderContention) {
  WorkerGuard guard(4);
  // The blocked primitives ride parallel_for; run them concurrently from
  // two external threads to cross their tasks in the shared deques.
  auto work = [](uint64_t seed) {
    std::vector<uint64_t> xs(120000);
    uint64_t state = seed;
    for (auto& x : xs) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      x = state;
    }
    auto expect = xs;
    std::sort(expect.begin(), expect.end());
    parallel_sort(xs);
    ASSERT_EQ(xs, expect);
  };
  std::thread a(work, 17), b(work, 91);
  a.join();
  b.join();
}

TEST(SchedulerTest, StatsAdvanceUnderParallelism) {
  WorkerGuard guard(4);
  Scheduler& s = Scheduler::instance();
  EXPECT_GE(s.executor_slots(), 5);  // >= 4 pool threads + external slot 0
  uint64_t before = s.tasks_spawned();
  parallel_for(0, 4096, [](size_t) {}, /*grain=*/1);
  EXPECT_GT(s.tasks_spawned(), before);
}

}  // namespace
}  // namespace parspan
