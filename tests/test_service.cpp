// Service-layer tests (DESIGN.md §8): incremental snapshot publishing
// against full re-export, concurrent readers vs a publishing writer
// (version monotonicity, self-consistency, no torn views), pinned-snapshot
// immortality and reference-counted reclamation, and thread-count
// determinism with the service in the loop.
//
// The concurrency tests are the ones the CI ThreadSanitizer job gates:
// every cross-thread handoff here goes through SnapshotStore's
// acquire/release pair, so a missing fence or a mutable shared field is a
// reported race, not a flake.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "core/ultra.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "service/spanner_service.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

std::vector<Edge> keyed(std::vector<Edge> es) {
  std::sort(es.begin(), es.end());
  return es;
}

std::unique_ptr<SpannerService> make_fds_service(size_t n,
                                                 const std::vector<Edge>& m0,
                                                 uint32_t k, uint64_t seed) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = seed;
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(n, m0, cfg), 2 * k - 1);
}

// --- Incremental publish == full export, version by version. --------------
TEST(Service, IncrementalSnapshotMatchesBackendExport) {
  const size_t n = 300;
  auto [initial, batches] = gen_mixed_stream(n, 3600, 120, 40, 21);
  auto svc = make_fds_service(n, initial, 3, 5);

  SpannerSnapshot::Ptr s0 = svc->snapshot();
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->version(), 0u);
  EXPECT_EQ(s0->stretch(), 5u);
  EXPECT_EQ(s0->edges(), keyed(svc->export_spanner()));

  for (size_t i = 0; i < batches.size(); ++i) {
    auto r = svc->apply(batches[i].insertions, batches[i].deletions);
    ASSERT_EQ(r.snapshot->version(), i + 1);
    ASSERT_EQ(svc->version(), i + 1);
    ASSERT_TRUE(r.snapshot->consistent());
    // The incrementally built snapshot equals a fresh export.
    ASSERT_EQ(r.snapshot->edges(), keyed(svc->export_spanner()))
        << "batch " << i;
    // And snapshot() serves exactly what apply() returned.
    ASSERT_EQ(svc->snapshot()->checksum(), r.snapshot->checksum());
  }
}

// --- Point queries answer against the pinned version. ---------------------
TEST(Service, SnapshotQueries) {
  const size_t n = 200;
  auto initial = gen_erdos_renyi(n, 2400, 7);
  auto svc = make_fds_service(n, initial, 2, 9);
  SpannerSnapshot::Ptr s = svc->snapshot();

  // has_edge: true exactly on the spanner edge set; endpoints out of range
  // or equal answer false.
  std::vector<Edge> span = s->edges();
  for (const Edge& e : span) {
    ASSERT_TRUE(s->has_edge(e.u, e.v));
    ASSERT_TRUE(s->has_edge(e.v, e.u));
  }
  EXPECT_FALSE(s->has_edge(0, 0));
  EXPECT_FALSE(s->has_edge(0, VertexId(n)));
  EXPECT_TRUE(s->neighbors(VertexId(n)).empty());
  EXPECT_EQ(s->degree(VertexId(n + 7)), 0u);
  EXPECT_EQ(s->distance(VertexId(n), 0, 3), kSnapshotUnreached);
  size_t present = 0;
  for (VertexId v = 1; v < 60; ++v) present += s->has_edge(0, v);
  size_t expect = 0;
  for (const Edge& e : span)
    expect += (e.u == 0 && e.v < 60) || (e.v == 0 && e.u < 60);
  EXPECT_EQ(present, expect);

  // neighbors: ascending, degree-consistent, symmetric.
  size_t deg_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto nb = s->neighbors(v);
    ASSERT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    ASSERT_EQ(nb.size(), s->degree(v));
    deg_sum += nb.size();
    for (VertexId w : nb) ASSERT_TRUE(s->has_edge(v, w));
  }
  EXPECT_EQ(deg_sum, 2 * s->num_edges());

  // distance: 0 to self, 1 across a spanner edge, and <= stretch for every
  // graph edge (the spanner guarantee, queried through the snapshot).
  ASSERT_FALSE(span.empty());
  EXPECT_EQ(s->distance(span[0].u, span[0].u, 0), 0u);
  EXPECT_EQ(s->distance(span[0].u, span[0].v, 5), 1u);
  for (size_t i = 0; i < initial.size(); i += 17) {
    uint32_t d = s->stretch_of(initial[i].u, initial[i].v);
    ASSERT_NE(d, kSnapshotUnreached) << "edge " << i;
    ASSERT_LE(d, s->stretch());
  }
}

// --- Readers vs writer: monotone versions, never a torn view. -------------
TEST(Service, ConcurrentReadersSeeMonotoneConsistentVersions) {
  const size_t n = 400;
  const size_t num_batches = 60;
  auto [initial, batches] = gen_mixed_stream(n, 4000, 96, num_batches, 33);
  auto svc = make_fds_service(n, initial, 3, 13);

  std::atomic<bool> done{false};
  const int R = 4;
  std::vector<uint64_t> acquires(R, 0);
  std::vector<std::thread> readers;
  readers.reserve(R);
  for (int t = 0; t < R; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last = 0, count = 0;
      uint64_t sink = 0;
      while (!done.load(std::memory_order_acquire) || count == 0) {
        SpannerSnapshot::Ptr s = svc->snapshot();
        ++count;
        // Version must never run backwards for any single reader.
        ASSERT_GE(s->version(), last);
        last = s->version();
        // The view must be the one the writer built: checksum re-derived
        // from the data the reader actually sees.
        ASSERT_TRUE(s->consistent()) << "version " << s->version();
        // Exercise real reads against the pinned version.
        VertexId v = VertexId((t * 131 + count * 17) % n);
        for (VertexId w : s->neighbors(v)) {
          ASSERT_TRUE(s->has_edge(v, w));
          sink += w;
        }
        sink += s->distance(v, VertexId((v + 1) % n), 4);
      }
      acquires[size_t(t)] = count + (sink == 0xdead ? 1 : 0);
    });
  }

  for (size_t i = 0; i < batches.size(); ++i)
    svc->apply(batches[i].insertions, batches[i].deletions);
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(svc->version(), num_batches);
  for (int t = 0; t < R; ++t) EXPECT_GT(acquires[size_t(t)], 0u);
}

// --- A pinned snapshot survives many publishes unchanged. -----------------
TEST(Service, PinnedSnapshotImmutableAcrossPublishes) {
  const size_t n = 250;
  auto [initial, batches] = gen_mixed_stream(n, 3000, 80, 50, 41);
  auto svc = make_fds_service(n, initial, 2, 17);

  SpannerSnapshot::Ptr pinned = svc->snapshot();
  const uint64_t checksum = pinned->checksum();
  const std::vector<Edge> edges = pinned->edges();

  for (auto& b : batches) svc->apply(b.insertions, b.deletions);

  EXPECT_EQ(svc->version(), batches.size());
  EXPECT_EQ(pinned->version(), 0u);
  EXPECT_EQ(pinned->checksum(), checksum);
  EXPECT_EQ(pinned->edges(), edges);
  EXPECT_TRUE(pinned->consistent());
}

// --- Reclamation: versions die exactly when their last holder lets go. ----
TEST(Service, SnapshotReclamation) {
  const size_t n = 150;
  auto [initial, batches] = gen_mixed_stream(n, 1500, 60, 4, 51);
  auto svc = make_fds_service(n, initial, 2, 23);

  // Unpinned: the store's publish drops the last reference to version 0.
  std::weak_ptr<const SpannerSnapshot> w0 = svc->snapshot();
  ASSERT_FALSE(w0.expired());
  svc->apply(batches[0].insertions, batches[0].deletions);
  EXPECT_TRUE(w0.expired());

  // Pinned: the reader's reference keeps version 1 alive across publishes;
  // releasing it is what frees the version.
  SpannerSnapshot::Ptr pinned = svc->snapshot();
  std::weak_ptr<const SpannerSnapshot> w1 = pinned;
  svc->apply(batches[1].insertions, batches[1].deletions);
  svc->apply(batches[2].insertions, batches[2].deletions);
  EXPECT_FALSE(w1.expired());
  EXPECT_TRUE(pinned->consistent());
  pinned.reset();
  EXPECT_TRUE(w1.expired());
}

// --- Thread-count determinism with the service in the loop. ---------------
// The §6 diff contract lifts to the serving layer: diffs AND published
// snapshot checksums are byte-identical between 1- and 4-worker runs.
TEST(Service, DiffsAndSnapshotsDeterministicAcrossWorkerCounts) {
  const size_t n = 300;
  auto [initial, batches] = gen_mixed_stream(n, 5000, 200, 20, 61);
  auto extra = gen_erdos_renyi(n, 2500, 63);
  batches.push_back(UpdateBatch{extra, {}});
  batches.push_back(UpdateBatch{{}, extra});

  int saved = num_workers();
  std::vector<SpannerDiff> base;
  std::vector<uint64_t> base_sums;
  {
    set_num_workers(1);
    auto svc = make_fds_service(n, initial, 3, 29);
    for (auto& b : batches) {
      auto r = svc->apply(b.insertions, b.deletions);
      base.push_back(std::move(r.diff));
      base_sums.push_back(r.snapshot->checksum());
    }
  }
  {
    set_num_workers(4);
    auto svc = make_fds_service(n, initial, 3, 29);
    for (size_t i = 0; i < batches.size(); ++i) {
      auto r = svc->apply(batches[i].insertions, batches[i].deletions);
      ASSERT_EQ(r.diff.inserted.size(), base[i].inserted.size()) << i;
      ASSERT_EQ(r.diff.removed.size(), base[i].removed.size()) << i;
      for (size_t j = 0; j < r.diff.inserted.size(); ++j)
        ASSERT_EQ(r.diff.inserted[j].key(), base[i].inserted[j].key()) << i;
      for (size_t j = 0; j < r.diff.removed.size(); ++j)
        ASSERT_EQ(r.diff.removed[j].key(), base[i].removed[j].key()) << i;
      ASSERT_EQ(r.snapshot->checksum(), base_sums[i]) << "batch " << i;
    }
  }
  set_num_workers(saved);
}

// --- The ultra-sparse backend plugs into the same service. ----------------
TEST(Service, UltraSparseBackend) {
  const size_t n = 400;
  auto [initial, batches] = gen_mixed_stream(n, 1600, 64, 10, 71);
  UltraConfig cfg;
  cfg.x = 2;
  cfg.seed = 3;
  auto ultra = std::make_unique<UltraSparseSpanner>(n, initial, cfg);
  const uint32_t stretch = ultra->stretch_bound();
  SpannerService svc(std::move(ultra), stretch);

  FlatHashSet<EdgeKey> live;
  for (const Edge& e : initial) live.insert(e.key());
  for (size_t i = 0; i < batches.size(); ++i) {
    auto r = svc.apply(batches[i].insertions, batches[i].deletions);
    for (const Edge& e : batches[i].deletions) live.erase(e.key());
    for (const Edge& e : batches[i].insertions) live.insert(e.key());
    ASSERT_TRUE(r.snapshot->consistent());
    ASSERT_EQ(r.snapshot->edges(), keyed(svc.export_spanner())) << i;
  }
  std::vector<Edge> live_edges;
  live.for_each([&](EdgeKey ek) { live_edges.push_back(edge_from_key(ek)); });
  EXPECT_TRUE(
      is_spanner(n, live_edges, svc.snapshot()->edges(), stretch));
}

}  // namespace
}  // namespace parspan
