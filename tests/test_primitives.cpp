// Unit tests for the parallel sequence primitives and RNG utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "parallel/primitives.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace parspan {
namespace {

TEST(Scan, EmptyAndSingle) {
  std::vector<uint64_t> xs;
  EXPECT_EQ(exclusive_scan_inplace(xs), 0u);
  xs = {7};
  EXPECT_EQ(exclusive_scan_inplace(xs), 7u);
  EXPECT_EQ(xs[0], 0u);
}

TEST(Scan, MatchesSerialLarge) {
  Rng rng(42);
  std::vector<uint64_t> xs(100000);
  for (auto& x : xs) x = rng.next_below(100);
  std::vector<uint64_t> expect(xs.size());
  uint64_t acc = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    expect[i] = acc;
    acc += xs[i];
  }
  EXPECT_EQ(exclusive_scan_inplace(xs), acc);
  EXPECT_EQ(xs, expect);
}

TEST(Pack, KeepsOrderAndContent) {
  std::vector<int> xs(50000);
  std::iota(xs.begin(), xs.end(), 0);
  auto evens = filter(xs, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), 25000u);
  for (size_t i = 0; i < evens.size(); ++i) EXPECT_EQ(evens[i], int(2 * i));
}

TEST(Sort, MatchesStdSort) {
  Rng rng(7);
  std::vector<uint64_t> xs(200000);
  for (auto& x : xs) x = rng.next();
  auto expect = xs;
  std::sort(expect.begin(), expect.end());
  parallel_sort(xs);
  EXPECT_EQ(xs, expect);
}

TEST(SortUnique, RemovesDuplicates) {
  Rng rng(9);
  std::vector<uint64_t> xs(30000);
  for (auto& x : xs) x = rng.next_below(1000);
  sort_unique(xs);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  EXPECT_EQ(std::unique(xs.begin(), xs.end()), xs.end());
  EXPECT_LE(xs.size(), 1000u);
}

TEST(Rng, ExponentialMeanRoughlyOneOverBeta) {
  Rng rng(3);
  double beta = 2.5, sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(beta);
  EXPECT_NEAR(sum / n, 1.0 / beta, 0.01);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    uint64_t x = rng.next_below(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng rng(11);
  Rng a = rng.split(0), b = rng.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(EdgeKey, RoundTripAndCanonical) {
  EXPECT_EQ(edge_key(3, 5), edge_key(5, 3));
  auto [u, v] = edge_endpoints(edge_key(9, 2));
  EXPECT_EQ(u, 2u);
  EXPECT_EQ(v, 9u);
  Edge e(10, 4);
  EXPECT_EQ(e.other(10), 4u);
  EXPECT_EQ(e.other(4), 10u);
  EXPECT_EQ(e, Edge(4, 10));
}

TEST(Reduce, SumMatches) {
  std::vector<int> xs(100000, 1);
  auto total = parallel_reduce(
      0, xs.size(), 0L, [&](size_t i) { return long(xs[i]); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, 100000L);
}

// Regression: each parallel worker used to seed its accumulator with `init`
// and the final combine added `init` once more, so a non-identity init was
// counted p + 1 times. The trip count must exceed the parallel grain to
// exercise the parallel path.
TEST(Reduce, NonIdentityInitCountedOnce) {
  const size_t n = 100000;
  auto total = parallel_reduce(
      0, n, 1000L, [](size_t) { return 1L; },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, 1000L + long(n));
}

TEST(Reduce, NonIdentityInitMax) {
  const size_t n = 50000;
  auto mx = parallel_reduce(
      0, n, 123456L, [](size_t i) { return long(i); },
      [](long a, long b) { return a > b ? a : b; });
  EXPECT_EQ(mx, 123456L);  // init dominates every element
}

TEST(Reduce, EmptyRangeReturnsInit) {
  auto total = parallel_reduce(
      5, 5, 42L, [](size_t) { return 1L; },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, 42L);
}

}  // namespace
}  // namespace parspan
