// Tests for the parallel batch-update pipeline (DESIGN.md §6): Invariant B1
// under adversarial insert/delete interleavings, thread-count determinism
// of SpannerDiff, and the (2k-1)-stretch guarantee over a long mixed
// update stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "util/rng.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

std::vector<Edge> keyed(std::vector<Edge> es) {
  std::sort(es.begin(), es.end());
  return es;
}

// --- Invariant B1 under adversarial interleavings. -----------------------
// The stream is crafted against the Bentley-Saxe chunking: insertion bursts
// sized exactly at partition capacities (so chunks land on slot
// boundaries), deletions aimed at freshly rebuilt partitions (draining
// them below capacity), and immediate re-insertion of just-deleted edges.
TEST(ParallelPipeline, InvariantB1AdversarialInterleavings) {
  const size_t n = 48;
  const uint32_t k = 2;
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 99;
  FullyDynamicSpanner sp(n, {}, cfg);
  ASSERT_TRUE(sp.check_invariants());

  // All edges of K_n, shuffled deterministically.
  std::vector<Edge> universe;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) universe.emplace_back(u, v);
  Rng rng(7);
  for (size_t i = universe.size(); i > 1; --i)
    std::swap(universe[i - 1], universe[rng.next_below(i)]);

  // Phase 1: insert in bursts matched to capacities 2^{l0}, 2^{l0+1}, ...
  // plus off-by-one sizes to stress the remainder path.
  std::vector<size_t> bursts = {1, 128, 127, 129, 256, 255, 64, 63, 65};
  size_t pos = 0;
  std::vector<Edge> live;
  for (size_t b : bursts) {
    std::vector<Edge> ins;
    for (size_t i = 0; i < b && pos < universe.size(); ++i)
      ins.push_back(universe[pos++]);
    live.insert(live.end(), ins.begin(), ins.end());
    sp.insert_edges(ins);
    ASSERT_TRUE(sp.check_invariants()) << "after burst of " << b;
  }

  // Phase 2: alternate deleting a prefix of the live set and re-inserting
  // half of it in the same batch, repeatedly hitting the same partitions.
  for (int round = 0; round < 10; ++round) {
    size_t del_count = std::min<size_t>(live.size(), 96 + size_t(round));
    std::vector<Edge> del(live.begin(), live.begin() + del_count);
    std::vector<Edge> reins(del.begin(), del.begin() + del_count / 2);
    sp.update(reins, del);
    live.erase(live.begin() + del_count / 2, live.begin() + del_count);
    ASSERT_TRUE(sp.check_invariants()) << "round " << round;
    ASSERT_EQ(sp.num_edges(), live.size());
    ASSERT_TRUE(is_spanner(n, live, sp.spanner_edges(), 2 * k - 1));
    // Rotate so later rounds target different edges.
    std::rotate(live.begin(), live.begin() + live.size() / 3, live.end());
  }
}

// --- Pending-slot absorption within one batch. ----------------------------
// A batch whose chunk decomposition fills a slot and then, for a smaller
// chunk, scans past it to a higher slot absorbs a partition whose rebuild
// job is still pending (filled edges, no installed instance yet). The job
// must be cancelled and its edges merged without phantom diff removals.
// Regression test: the pipeline's phased rebuild once took the E_0-style
// branch here and emitted thousands of "removed" entries for edges that
// were never in the spanner.
TEST(ParallelPipeline, PendingSlotAbsorbedByLargerMerge) {
  const size_t n = 1024;
  FullyDynamicSpannerConfig cfg;
  cfg.k = 8;  // l0 = 12: capacity(0) = 4096, capacity(1) = 8192, ...
  cfg.seed = 13;
  auto initial = gen_erdos_renyi(n, 5000, 1);  // lands in slot 1
  FullyDynamicSpanner sp(n, initial, cfg);
  ASSERT_TRUE(sp.check_invariants());

  std::unordered_set<EdgeKey> have;
  for (const Edge& e : initial) have.insert(e.key());
  std::unordered_set<EdgeKey> mat;
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());

  // capacity(2) + capacity(1) fresh edges: chunk i=2 fills slot 2 (job
  // pending), chunk i=1 scans past slots 1 and 2 into slot 3, absorbing
  // the pending slot 2.
  std::vector<Edge> fresh;
  Rng rng(4242);
  while (fresh.size() < 16384 + 8192) {
    VertexId u = VertexId(rng.next_below(n));
    VertexId v = VertexId(rng.next_below(n));
    if (u == v || have.count(edge_key(u, v))) continue;
    fresh.emplace_back(u, v);
    have.insert(edge_key(u, v));
  }
  SpannerDiff diff = sp.insert_edges(fresh);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_EQ(sp.num_edges(), have.size());
  // The diff must transform the old spanner set into the new one exactly.
  for (const Edge& e : diff.removed) {
    ASSERT_TRUE(mat.count(e.key())) << "phantom removal";
    mat.erase(e.key());
  }
  for (const Edge& e : diff.inserted) {
    ASSERT_TRUE(!mat.count(e.key()));
    mat.insert(e.key());
  }
  std::unordered_set<EdgeKey> now;
  for (const Edge& e : sp.spanner_edges()) now.insert(e.key());
  EXPECT_EQ(mat, now);
}

// --- SpannerDiff determinism across thread counts. ------------------------
// The same construction + update stream must produce byte-identical diffs
// whether the pipeline runs on 1 worker or 4 (DESIGN.md §6's contract).
TEST(ParallelPipeline, SpannerDiffDeterministicAcrossThreadCounts) {
  const size_t n = 300;
  const uint32_t k = 3;
  auto [initial, batches] = gen_mixed_stream(n, 6000, 200, 25, 17);
  // Insertion bursts big enough to force partition rebuilds (and their
  // parallel merge sorts) mid-stream.
  auto extra = gen_erdos_renyi(n, 3000, 23);
  batches.push_back(UpdateBatch{extra, {}});
  batches.push_back(UpdateBatch{{}, extra});

  int saved = num_workers();
  std::vector<SpannerDiff> base;
  std::vector<std::vector<Edge>> base_spanner;
  {
    set_num_workers(1);
    FullyDynamicSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 5;
    FullyDynamicSpanner sp(n, initial, cfg);
    for (auto& b : batches) {
      base.push_back(sp.update(b.insertions, b.deletions));
      base_spanner.push_back(keyed(sp.spanner_edges()));
    }
  }
  {
    set_num_workers(4);
    FullyDynamicSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 5;
    FullyDynamicSpanner sp(n, initial, cfg);
    for (size_t i = 0; i < batches.size(); ++i) {
      SpannerDiff d = sp.update(batches[i].insertions, batches[i].deletions);
      ASSERT_EQ(d.inserted.size(), base[i].inserted.size()) << "batch " << i;
      ASSERT_EQ(d.removed.size(), base[i].removed.size()) << "batch " << i;
      for (size_t j = 0; j < d.inserted.size(); ++j)
        ASSERT_EQ(d.inserted[j].key(), base[i].inserted[j].key())
            << "batch " << i << " entry " << j;
      for (size_t j = 0; j < d.removed.size(); ++j)
        ASSERT_EQ(d.removed[j].key(), base[i].removed[j].key())
            << "batch " << i << " entry " << j;
      ASSERT_EQ(keyed(sp.spanner_edges()), base_spanner[i]) << "batch " << i;
    }
  }
  set_num_workers(saved);
}

// --- Diff output is sorted by canonical key. ------------------------------
TEST(ParallelPipeline, DiffSidesSortedByKey) {
  const size_t n = 120;
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 2;
  auto edges = gen_erdos_renyi(n, 1500, 3);
  FullyDynamicSpanner sp(n, edges, cfg);
  auto stream = gen_decremental_stream(edges, 200, 9);
  for (auto& b : stream) {
    SpannerDiff d = sp.update(b.insertions, b.deletions);
    ASSERT_TRUE(std::is_sorted(d.inserted.begin(), d.inserted.end()));
    ASSERT_TRUE(std::is_sorted(d.removed.begin(), d.removed.end()));
  }
  EXPECT_EQ(sp.num_edges(), 0u);
}

// --- Stretch after 100 mixed batches. -------------------------------------
// End-to-end: the maintained edge set stays a (2k-1)-spanner of the live
// graph through a long adversary-independent mixed stream.
TEST(ParallelPipeline, StretchHoldsAfter100MixedBatches) {
  const size_t n = 200;
  const uint32_t k = 3;
  auto [initial, batches] = gen_mixed_stream(n, 2400, 40, 100, 31);
  ASSERT_EQ(batches.size(), 100u);
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 77;
  FullyDynamicSpanner sp(n, initial, cfg);

  std::unordered_set<EdgeKey> live;
  for (const Edge& e : initial) live.insert(e.key());
  for (size_t i = 0; i < batches.size(); ++i) {
    sp.update(batches[i].insertions, batches[i].deletions);
    for (const Edge& e : batches[i].deletions) live.erase(e.key());
    for (const Edge& e : batches[i].insertions) live.insert(e.key());
    if (i % 10 == 9 || i + 1 == batches.size()) {
      std::vector<Edge> alive;
      for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
      ASSERT_TRUE(is_spanner(n, alive, sp.spanner_edges(), 2 * k - 1))
          << "batch " << i;
      ASSERT_TRUE(sp.check_invariants()) << "batch " << i;
    }
  }
  ASSERT_EQ(live.size(), sp.num_edges());
}

}  // namespace
}  // namespace parspan
