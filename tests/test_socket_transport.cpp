// SocketTransport tests (DESIGN.md §14.1): wire goldens pinned to the
// byte, end-to-end WAL shipping over real loopback TCP, hostile-bytes
// sweeps (every-prefix truncation + every-bit-flip over a recorded healthy
// session — the test_net.cpp golden-sweep pattern applied to replication),
// and the half-open-peer guarantee that a non-reading follower can never
// block the leader's shipping loop.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/fault_fs.hpp"
#include "durability/frame.hpp"
#include "graph/generators.hpp"
#include "replication/follower.hpp"
#include "replication/log_shipper.hpp"
#include "replication/socket_transport.hpp"
#include "service/spanner_service.hpp"

namespace parspan {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// --- Plumbing ---------------------------------------------------------------

// A connected AF_UNIX stream pair: `transport_end` is non-blocking (the
// transport's contract), `feed_end` stays blocking for the test to write.
struct SockPair {
  int transport_end = -1;
  int feed_end = -1;
  SockPair() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    transport_end = sv[0];
    feed_end = sv[1];
    fcntl(transport_end, F_SETFL, O_NONBLOCK);
  }
  ~SockPair() {
    // transport_end is owned (and closed) by the SocketTransport.
    if (feed_end >= 0) ::close(feed_end);
  }
};

void feed(int fd, const uint8_t* p, size_t len) {
  while (len > 0) {
    const ssize_t w = send(fd, p, len, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    p += w;
    len -= static_cast<size_t>(w);
  }
}

ShipFrame raw_ship(std::vector<uint8_t> bytes) {
  ShipFrame f;
  f.bytes = std::move(bytes);
  return f;
}

// A healthy recorded session: every wire kind at least once, deterministic
// bytes. The ship bodies are opaque to the transport (the follower owns
// their verification), so raw byte patterns exercise exactly the layer
// under test.
struct Recording {
  std::vector<uint8_t> stream;
  std::vector<std::vector<uint8_t>> ship_bodies;  // in send order
  std::vector<ReplicaCursor> cursors;             // in send order
  std::vector<uint64_t> heartbeat_epochs;         // in send order
};

Recording record_session() {
  Recording r;
  auto add_ship = [&](std::vector<uint8_t> body) {
    encode_ship_msg(r.stream, raw_ship(body));
    r.ship_bodies.push_back(std::move(body));
  };
  auto add_cursor = [&](uint64_t epoch, uint64_t version, bool need) {
    ReplicaCursor c;
    c.epoch = epoch;
    c.version = version;
    c.need_snapshot = need;
    encode_cursor_msg(r.stream, c);
    r.cursors.push_back(c);
  };
  auto add_heartbeat = [&](uint64_t epoch) {
    encode_heartbeat_msg(r.stream, epoch);
    r.heartbeat_epochs.push_back(epoch);
  };

  add_heartbeat(7);
  add_cursor(1, 0, true);
  std::vector<uint8_t> snapshotish(64);
  for (size_t i = 0; i < snapshotish.size(); ++i)
    snapshotish[i] = static_cast<uint8_t>(i * 37 + 5);
  add_ship(snapshotish);
  add_cursor(2, 9, false);
  add_ship({0x02, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x11});
  add_heartbeat(9);
  add_ship(std::vector<uint8_t>(17, 0xa5));
  add_cursor(2, 11, false);
  return r;
}

// Drains a transport until EOF/failure or `deadline`, asserting the
// PREFIX PROPERTY: everything delivered byte-equals the recording's
// per-kind send order. Corruption may truncate the delivered sequence —
// it must never alter or reorder it.
void drain_and_check_prefix(SocketTransport& t, const Recording& r) {
  size_t ships = 0;
  size_t cursors = 0;
  const auto deadline = Clock::now() + 2s;
  while (Clock::now() < deadline) {
    t.poll();
    bool progressed = false;
    while (auto f = t.recv_frame()) {
      ASSERT_LT(ships, r.ship_bodies.size()) << "phantom ship frame";
      ASSERT_EQ(f->bytes, r.ship_bodies[ships]) << "ship frame " << ships
                                                << " altered in flight";
      ++ships;
      progressed = true;
    }
    while (auto c = t.recv_cursor()) {
      ASSERT_LT(cursors, r.cursors.size()) << "phantom cursor";
      const ReplicaCursor& want = r.cursors[cursors];
      ASSERT_EQ(c->epoch, want.epoch);
      ASSERT_EQ(c->version, want.version);
      ASSERT_EQ(c->need_snapshot, want.need_snapshot);
      ++cursors;
      progressed = true;
    }
    if (t.peer_gone()) break;
    if (!progressed) std::this_thread::sleep_for(1ms);
  }
  // Heartbeats fold into "latest epoch": it must be one the session sent
  // (or none yet).
  const uint64_t hb = t.last_heartbeat_epoch();
  bool hb_ok = hb == 0;
  for (uint64_t e : r.heartbeat_epochs) hb_ok = hb_ok || hb == e;
  ASSERT_TRUE(hb_ok) << "phantom heartbeat epoch " << hb;
}

// --- Wire goldens -----------------------------------------------------------
// Pinned byte-for-byte: outer frame = len u32 | crc32c(payload) u32 |
// payload, payload = kind u8 | body. A codec change that shifts any byte
// is a cross-process protocol break and must show up here.

std::vector<uint8_t> frame_of(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  append_frame(out, payload.data(), payload.size());
  return out;
}

TEST(SocketTransportWire, SubscribeGolden) {
  std::vector<uint8_t> got;
  encode_subscribe_msg(got, 0x01020304u);
  EXPECT_EQ(got, frame_of({0x04, 0x04, 0x03, 0x02, 0x01}));
}

TEST(SocketTransportWire, CursorGolden) {
  ReplicaCursor c;
  c.epoch = 2;
  c.version = 0x0102030405060708ull;
  c.need_snapshot = true;
  std::vector<uint8_t> got;
  encode_cursor_msg(got, c);
  EXPECT_EQ(got, frame_of({0x02,                                      // kind
                           2, 0, 0, 0, 0, 0, 0, 0,                    // epoch
                           0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02,  //
                           0x01,                                      // version
                           0x01}));                                   // need
}

TEST(SocketTransportWire, HeartbeatGolden) {
  std::vector<uint8_t> got;
  encode_heartbeat_msg(got, 0xabcdull);
  EXPECT_EQ(got, frame_of({0x03, 0xcd, 0xab, 0, 0, 0, 0, 0, 0}));
}

TEST(SocketTransportWire, ShipGoldenCarriesBodyVerbatim) {
  const std::vector<uint8_t> body{0x01, 0x02, 0x03};
  std::vector<uint8_t> got;
  encode_ship_msg(got, raw_ship(body));
  EXPECT_EQ(got, frame_of({0x01, 0x01, 0x02, 0x03}));
}

// --- Healthy delivery -------------------------------------------------------

TEST(SocketTransport, DeliversARecordedSessionExactly) {
  const Recording r = record_session();
  SockPair sp;
  SocketTransport t(sp.transport_end);
  feed(sp.feed_end, r.stream.data(), r.stream.size());
  size_t ships = 0;
  size_t cursors = 0;
  uint64_t last_hb = 0;
  const auto deadline = Clock::now() + 2s;
  while ((ships < r.ship_bodies.size() || cursors < r.cursors.size()) &&
         Clock::now() < deadline) {
    t.poll();
    while (auto f = t.recv_frame()) {
      ASSERT_LT(ships, r.ship_bodies.size());
      EXPECT_EQ(f->bytes, r.ship_bodies[ships]);
      ++ships;
    }
    while (auto c = t.recv_cursor()) {
      ASSERT_LT(cursors, r.cursors.size());
      EXPECT_EQ(c->version, r.cursors[cursors].version);
      ++cursors;
    }
    last_hb = t.last_heartbeat_epoch();
  }
  EXPECT_EQ(ships, r.ship_bodies.size());
  EXPECT_EQ(cursors, r.cursors.size());
  EXPECT_EQ(last_hb, r.heartbeat_epochs.back());
  EXPECT_FALSE(t.peer_gone());
}

// --- Hostile sweeps ---------------------------------------------------------

TEST(SocketTransport, EveryPrefixTruncationNeverDeliversACorruptMessage) {
  const Recording r = record_session();
  for (size_t cut = 0; cut < r.stream.size(); ++cut) {
    SockPair sp;
    SocketTransport t(sp.transport_end);
    feed(sp.feed_end, r.stream.data(), cut);
    ::shutdown(sp.feed_end, SHUT_WR);  // EOF mid-message
    drain_and_check_prefix(t, r);
    // A true prefix always ends with EOF (possibly mid-frame): gone.
    EXPECT_TRUE(t.peer_gone()) << "cut=" << cut;
  }
}

TEST(SocketTransport, EveryBitFlipNeverDeliversACorruptMessage) {
  const Recording r = record_session();
  for (size_t bit = 0; bit < r.stream.size() * 8; ++bit) {
    std::vector<uint8_t> mutated = r.stream;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    SockPair sp;
    SocketTransport t(sp.transport_end);
    feed(sp.feed_end, mutated.data(), mutated.size());
    ::shutdown(sp.feed_end, SHUT_WR);
    // One subtlety: a flip inside a LENGTH field can masquerade as a
    // longer frame still in flight (kNeedMore forever) — that is a
    // truncation from the receiver's view, and EOF ends it. Either way
    // the delivered sequence must be an unaltered prefix.
    drain_and_check_prefix(t, r);
  }
}

// --- Half-open peer ---------------------------------------------------------
// A SIGSTOPped follower stops reading but keeps the connection alive. The
// leader's shipping loop must (a) never block, (b) stage at most
// max_buffered_bytes before declaring the peer gone.

TEST(SocketTransport, NonReadingPeerNeverBlocksSenderAndTripsTheCap) {
  SocketTransportConfig cfg;
  cfg.max_buffered_bytes = 32u << 10;
  SockPair sp;  // feed_end never reads — the stopped follower
  SocketTransport t(sp.transport_end, cfg);
  ShipFrame big = raw_ship(std::vector<uint8_t>(4096, 0xab));
  const auto t0 = Clock::now();
  int sends = 0;
  while (!t.peer_gone() && sends < 100000) {
    t.send_frame(big);
    ++sends;
  }
  EXPECT_TRUE(t.peer_gone()) << "cap never tripped after " << sends;
  // Socket buffer + cap bound the sends; anywhere near the loop limit
  // would mean unbounded staging.
  EXPECT_LT(sends, 1000);
  EXPECT_LT(Clock::now() - t0, 10s) << "sender blocked on a dead peer";
}

// --- End-to-end over real TCP ----------------------------------------------
// The §11 pump pair — LogShipper and FollowerReplica — runs UNCHANGED over
// loopback TCP through listener-accepted and dialed transports, and the
// follower converges onto the leader's checksum oracle.

TEST(SocketTransport, ShipsAndAppliesOverLoopbackTcp) {
  const size_t n = 96;
  auto [initial, batches] = gen_mixed_stream(n, 400, 24, 8, /*seed=*/21);
  FullyDynamicSpannerConfig fd;
  fd.k = 2;
  fd.seed = 99;

  auto lfs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.checkpoint_every = 8;
  SpannerService leader(std::make_unique<FullyDynamicSpanner>(n, initial, fd),
                        2 * fd.k - 1);
  ASSERT_TRUE(leader.enable_durability(lfs, "leader", opts, initial));

  ReplicationListener listener;
  ASSERT_TRUE(listener.start("127.0.0.1", 0));
  auto dialed = SocketTransport::connect("127.0.0.1", listener.port(),
                                         /*follower_id=*/3);
  ASSERT_NE(dialed, nullptr);
  std::shared_ptr<SocketTransport> accepted;
  const auto hs_deadline = Clock::now() + 5s;
  while (accepted == nullptr && Clock::now() < hs_deadline) {
    listener.poll();
    auto got = listener.take_accepted();
    if (!got.empty()) {
      EXPECT_EQ(got[0].follower_id, 3u);
      accepted = std::move(got[0].transport);
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  ASSERT_NE(accepted, nullptr);

  auto ffs = std::make_shared<MemFs>();
  FollowerReplica follower(ffs, "f", opts, dialed);
  LogShipper shipper(lfs, "leader", /*epoch=*/1, accepted);

  std::vector<uint64_t> oracle{leader.snapshot()->checksum()};
  for (const auto& b : batches) {
    auto res = leader.apply(b.insertions, b.deletions);
    oracle.push_back(res.snapshot->checksum());
    const uint64_t durable = leader.durability()->durable_version();
    const auto deadline = Clock::now() + 5s;
    while (follower.applied_version() < durable && Clock::now() < deadline) {
      follower.pump();  // drains frames, advertises the cursor
      accepted->poll();
      shipper.pump(durable);
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(follower.applied_version(), durable);
    ASSERT_LT(follower.applied_version(), oracle.size());
    ASSERT_EQ(follower.applied_checksum(), oracle[follower.applied_version()])
        << "SILENT DIVERGENCE over TCP at " << follower.applied_version();
  }
  EXPECT_EQ(follower.rejects(), 0u);
  EXPECT_EQ(follower.snapshot_resyncs(), 1u);  // one seeding, rest records
  EXPECT_GT(follower.records_applied(), 0u);
  EXPECT_FALSE(dialed->peer_gone());
  EXPECT_FALSE(accepted->peer_gone());
  listener.stop();
}

// Refusal IS the partition primitive: a refused id's handshake is closed
// on sight; the follower sees peer-gone and keeps retrying (no deadlock,
// no half-subscribed limbo), and healing readmits the same id.

TEST(SocketTransport, ListenerRefusalPartitionsAndHeals) {
  ReplicationListener listener;
  ASSERT_TRUE(listener.start("127.0.0.1", 0));
  listener.set_refused(5, true);

  auto refused = SocketTransport::connect("127.0.0.1", listener.port(), 5);
  ASSERT_NE(refused, nullptr);  // TCP connects; the HANDSHAKE is refused
  const auto deadline = Clock::now() + 5s;
  while (!refused->peer_gone() && Clock::now() < deadline) {
    listener.poll();
    EXPECT_TRUE(listener.take_accepted().empty());
    refused->poll();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(refused->peer_gone());

  listener.set_refused(5, false);  // heal
  auto healed = SocketTransport::connect("127.0.0.1", listener.port(), 5);
  ASSERT_NE(healed, nullptr);
  std::shared_ptr<SocketTransport> accepted;
  const auto heal_deadline = Clock::now() + 5s;
  while (accepted == nullptr && Clock::now() < heal_deadline) {
    listener.poll();
    auto got = listener.take_accepted();
    if (!got.empty())
      accepted = std::move(got[0].transport);
    else
      std::this_thread::sleep_for(1ms);
  }
  ASSERT_NE(accepted, nullptr);
  EXPECT_FALSE(healed->peer_gone());
  listener.stop();
}

}  // namespace
}  // namespace parspan
