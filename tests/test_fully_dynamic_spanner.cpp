// Tests for the fully-dynamic (2k-1)-spanner (Theorem 1.1, Bentley-Saxe
// reduction over the decremental structure of Lemma 3.3).
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

TEST(FullyDynamicSpanner, EmptyInitThenInsert) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  FullyDynamicSpanner sp(30, {}, cfg);
  EXPECT_EQ(sp.num_edges(), 0u);
  EXPECT_EQ(sp.spanner_size(), 0u);
  auto edges = gen_erdos_renyi(30, 100, 3);
  auto diff = sp.insert_edges(edges);
  EXPECT_EQ(sp.num_edges(), 100u);
  EXPECT_EQ(diff.inserted.size(), sp.spanner_size());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(30, edges, sp.spanner_edges(), 5));
}

TEST(FullyDynamicSpanner, InsertDuplicatesIgnored) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto edges = gen_cycle(12);
  FullyDynamicSpanner sp(12, edges, cfg);
  size_t before = sp.num_edges();
  auto diff = sp.insert_edges(edges);  // all duplicates
  EXPECT_EQ(sp.num_edges(), before);
  EXPECT_TRUE(diff.inserted.empty());
  EXPECT_TRUE(diff.removed.empty());
}

TEST(FullyDynamicSpanner, DeleteThenReinsertSameBatch) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto edges = gen_erdos_renyi(20, 60, 5);
  FullyDynamicSpanner sp(20, edges, cfg);
  // Delete 10 edges and re-insert 5 of them in the same batch.
  std::vector<Edge> del(edges.begin(), edges.begin() + 10);
  std::vector<Edge> ins(edges.begin(), edges.begin() + 5);
  sp.update(ins, del);
  EXPECT_EQ(sp.num_edges(), 55u);
  EXPECT_TRUE(sp.check_invariants());
}

class FdSpannerRandom : public ::testing::TestWithParam<
                            std::tuple<size_t, size_t, uint32_t, size_t,
                                       uint64_t>> {};

TEST_P(FdSpannerRandom, MixedStreamKeepsSpannerAndDiffs) {
  auto [n, m, k, batch, seed] = GetParam();
  auto [initial, batches] = gen_mixed_stream(n, m, batch, 12, seed);
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = seed * 31 + 7;
  FullyDynamicSpanner sp(n, initial, cfg);
  ASSERT_TRUE(sp.check_invariants());

  std::unordered_set<EdgeKey> live, mat;
  for (const Edge& e : initial) live.insert(e.key());
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());

  for (auto& b : batches) {
    auto diff = sp.update(b.insertions, b.deletions);
    for (const Edge& e : b.deletions) live.erase(e.key());
    for (const Edge& e : b.insertions) live.insert(e.key());
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key()));
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key()));
      mat.insert(e.key());
    }
    ASSERT_EQ(live.size(), sp.num_edges());
    ASSERT_EQ(mat.size(), sp.spanner_size());
    ASSERT_TRUE(sp.check_invariants());
    // Spanner property over the live graph.
    std::vector<Edge> alive;
    for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
    ASSERT_TRUE(is_spanner(n, alive, sp.spanner_edges(), 2 * k - 1));
    // Spanner subset of live edges.
    for (const Edge& e : sp.spanner_edges())
      ASSERT_TRUE(live.count(e.key()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdSpannerRandom,
    ::testing::Values(
        std::make_tuple(size_t{20}, size_t{50}, uint32_t{2}, size_t{10},
                        uint64_t{1}),
        std::make_tuple(size_t{30}, size_t{100}, uint32_t{3}, size_t{20},
                        uint64_t{2}),
        std::make_tuple(size_t{40}, size_t{150}, uint32_t{2}, size_t{40},
                        uint64_t{3}),
        std::make_tuple(size_t{50}, size_t{120}, uint32_t{4}, size_t{16},
                        uint64_t{4}),
        std::make_tuple(size_t{25}, size_t{80}, uint32_t{3}, size_t{6},
                        uint64_t{5}),
        std::make_tuple(size_t{60}, size_t{240}, uint32_t{3}, size_t{50},
                        uint64_t{6})));

TEST(FullyDynamicSpanner, ManySmallBatchesTriggerRebuilds) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  FullyDynamicSpanner sp(16, {}, cfg);
  Rng rng(11);
  std::unordered_set<EdgeKey> live;
  for (int round = 0; round < 60; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 3; ++i) {
      VertexId u = VertexId(rng.next_below(16));
      VertexId v = VertexId(rng.next_below(16));
      if (u != v && !live.count(edge_key(u, v))) {
        ins.emplace_back(u, v);
        live.insert(edge_key(u, v));
      }
    }
    sp.insert_edges(ins);
    ASSERT_TRUE(sp.check_invariants());
  }
  std::vector<Edge> alive;
  for (EdgeKey ek : live) alive.push_back(edge_from_key(ek));
  EXPECT_TRUE(is_spanner(16, alive, sp.spanner_edges(), 3));
}

TEST(FullyDynamicSpanner, FullDeletionEmptiesSpanner) {
  auto edges = gen_erdos_renyi(24, 80, 7);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  FullyDynamicSpanner sp(24, edges, cfg);
  auto diff = sp.delete_edges(edges);
  EXPECT_EQ(sp.num_edges(), 0u);
  EXPECT_EQ(sp.spanner_size(), 0u);
  EXPECT_TRUE(diff.inserted.empty());
  EXPECT_TRUE(sp.check_invariants());
}

}  // namespace
}  // namespace parspan
