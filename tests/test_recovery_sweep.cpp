// Randomized kill/restore differential sweep (DESIGN.md §10.6): the
// fault-injection gate for the durability layer.
//
// Strategy: run a deterministic ingest workload over MemFs once to learn
// its mutating-op budget, then re-run it with a crash scheduled at op K for
// hundreds of K spread across the budget — every filesystem touch
// (header write, frame append, fsync, checkpoint create/sync/rename, GC
// remove) gets hit eventually. Each crash yields a byte-exact post-crash
// disk image (unsynced tails resolved as lose-all / random-prefix /
// keep-all, optionally with a flipped bit in the surviving tail); recovery
// must then restore SOME prefix of the live run's publish history,
// checksum-exact, and never an older version than the durable watermark
// the writer had established (synced WAL frame or committed checkpoint).
//
// The oracle is the live run itself: apply() is deterministic in (backend
// construction, batch history), so the pre-crash run's checksum-by-version
// table says exactly what every restorable version must hash to.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/durable_shard.hpp"
#include "durability/fault_fs.hpp"
#include "graph/generators.hpp"
#include "service/sharded_service.hpp"
#include "service/spanner_service.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

// Scaled down via PARSPAN_SWEEP_TINY=1 (CI smoke lanes); the full sweep is
// the default and what the sanitizer jobs run.
bool tiny_sweep() {
  const char* env = std::getenv("PARSPAN_SWEEP_TINY");
  return env != nullptr && env[0] == '1';
}

struct Workload {
  size_t n = 120;
  std::vector<Edge> initial;
  std::vector<UpdateBatch> batches;
  FullyDynamicSpannerConfig cfg;
};

Workload make_workload(uint64_t seed) {
  Workload w;
  auto [initial, batches] = gen_mixed_stream(w.n, 700, 40, 12, seed);
  w.initial = std::move(initial);
  w.batches = std::move(batches);
  w.cfg.k = 3;
  w.cfg.seed = seed * 7 + 1;
  return w;
}

std::unique_ptr<SpannerService> make_service(const Workload& w) {
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(w.n, w.initial, w.cfg),
      2 * w.cfg.k - 1);
}

// Applies the whole workload with durability attached (crash faults may be
// scheduled on `fs`); returns checksum-by-version of everything published.
std::vector<uint64_t> run_ingest(const Workload& w, SpannerService& svc) {
  std::vector<uint64_t> by_version{svc.snapshot()->checksum()};
  for (const auto& b : w.batches) {
    auto r = svc.apply(b.insertions, b.deletions);
    by_version.push_back(r.snapshot->checksum());
  }
  return by_version;
}

std::unique_ptr<SpannerService> recover_service(
    const Workload& w, std::shared_ptr<Fs> fs, const DurabilityOptions& opts,
    SpannerService::RecoveryReport* rep) {
  const FullyDynamicSpannerConfig cfg = w.cfg;
  return SpannerService::recover(
      std::move(fs), "dur", opts,
      [cfg](uint64_t n, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(size_t(n), edges, cfg);
      },
      rep);
}

struct SweepStats {
  int runs = 0;
  int recovered = 0;
  int torn_tails = 0;
  uint64_t replayed = 0;
};

// One crash point: ingest with a crash at `crash_op`, restart with `tail`
// semantics, recover, check against the oracle. `media_rot` additionally
// flips a durable bit of one WAL segment before recovery (the fsync
// promise violated — the watermark guarantee is then off the table, but
// checksum-exactness of whatever IS restored never is).
void run_crash_point(const Workload& w, const std::vector<uint64_t>& oracle,
                     const DurabilityOptions& opts, uint64_t crash_op,
                     CrashTail tail, double bit_flip_p, bool media_rot,
                     Rng& rng, SweepStats* stats) {
  SCOPED_TRACE("crash_op=" + std::to_string(crash_op) +
               " tail=" + std::to_string(int(tail)) +
               " rot=" + std::to_string(media_rot));
  ++stats->runs;
  auto fs = std::make_shared<MemFs>();
  auto svc = make_service(w);
  fs->crash_at_op(crash_op);
  bool enabled = svc->enable_durability(fs, "dur", opts, w.initial);
  std::vector<uint64_t> live = run_ingest(w, *svc);
  ASSERT_EQ(live.size(), oracle.size());
  for (size_t v = 0; v < live.size(); ++v) ASSERT_EQ(live[v], oracle[v]);

  // The writer's durable watermark, captured before "power-off": recovery
  // must give back at least this version (unless we rot the media below).
  const uint64_t watermark =
      enabled ? svc->durability()->durable_version() : 0;
  svc.reset();
  fs->crash_and_restart(tail, rng, bit_flip_p);

  if (media_rot) {
    for (const std::string& name : fs->list("dur"))
      if (name.rfind("wal-", 0) == 0) {
        size_t sz = fs->durable_size("dur/" + name);
        if (sz > 0)
          fs->corrupt_durable("dur/" + name, size_t(rng.next_below(sz)),
                              uint8_t(rng.next_below(8)));
      }
  }

  SpannerService::RecoveryReport rep;
  auto back = recover_service(w, fs, opts, &rep);
  if (!enabled) {
    // The crash landed inside enable_durability: there may or may not be a
    // committed genesis checkpoint. Whatever recovers must still be exact.
    if (back == nullptr) return;
  }
  ASSERT_NE(back, nullptr);
  ++stats->recovered;
  stats->replayed += rep.replayed_records;
  stats->torn_tails += rep.tail_truncated;

  // THE invariant: the restored state is byte-identical to what the live
  // run published at that version — a corrupt frame never replays.
  ASSERT_LT(rep.restored_version, oracle.size());
  EXPECT_EQ(rep.restored_checksum, oracle[rep.restored_version]);
  if (!media_rot) EXPECT_GE(rep.restored_version, watermark);
  EXPECT_EQ(rep.published_version, rep.restored_version + 1);

  auto snap = back->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), rep.published_version);
  EXPECT_TRUE(snap->consistent());

  // Post-recovery continuation + second crash/recover: the rebase epoch's
  // own history must be recoverable too.
  auto [unused, more] = gen_mixed_stream(w.n, 700, 40, 2, crash_op + 1000);
  (void)unused;
  std::vector<uint64_t> continued{snap->checksum()};
  for (const auto& b : more) {
    auto r = back->apply(b.insertions, b.deletions);
    continued.push_back(r.snapshot->checksum());
  }
  EXPECT_FALSE(back->durability()->failed());
  // Even a tail-preserving crash only keeps what reached the fs: frames
  // staged in the writer's user-space buffer are gone regardless, so the
  // bound is the watermark, not the full continued history.
  const uint64_t watermark2 = back->durability()->durable_version();
  back.reset();
  fs->crash_and_restart(CrashTail::kKeepAll, rng);
  SpannerService::RecoveryReport rep2;
  auto back2 = recover_service(w, fs, opts, &rep2);
  ASSERT_NE(back2, nullptr);
  EXPECT_GE(rep2.restored_version, watermark2);
  ASSERT_GE(rep2.restored_version, rep.published_version);
  ASSERT_LE(rep2.restored_version, rep.published_version + more.size());
  EXPECT_EQ(rep2.restored_checksum,
            continued[size_t(rep2.restored_version - rep.published_version)]);
}

// --- The main sweep: >= 200 crash points across all three policies --------

TEST(RecoverySweep, CrashPointsAcrossFsyncPolicies) {
  const int points_per_policy = tiny_sweep() ? 8 : 70;
  Rng rng(0xC0FFEE);
  const Workload w = make_workload(5);

  struct PolicyCase {
    FsyncPolicy policy;
    uint32_t every_n;
  };
  const PolicyCase cases[] = {
      {FsyncPolicy::kEveryRecord, 1},
      {FsyncPolicy::kEveryN, 4},
      // interval 0: syncs on every append — the timed path's bookkeeping
      // under crashes without wall-clock flakiness in the sweep.
      {FsyncPolicy::kTimed, 0},
  };
  SweepStats stats;
  for (const PolicyCase& pc : cases) {
    DurabilityOptions opts;
    opts.fsync_policy = pc.policy;
    opts.fsync_every_n = pc.every_n;
    opts.fsync_interval = std::chrono::milliseconds(0);
    opts.checkpoint_every = 5;
    opts.keep_checkpoints = 2;

    // Learn the op budget from a crash-free run.
    uint64_t total_ops = 0;
    std::vector<uint64_t> oracle;
    {
      auto fs = std::make_shared<MemFs>();
      auto svc = make_service(w);
      ASSERT_TRUE(svc->enable_durability(fs, "dur", opts, w.initial));
      oracle = run_ingest(w, *svc);
      ASSERT_FALSE(svc->durability()->failed());
      total_ops = fs->ops();
      ASSERT_GT(total_ops, 30u);
    }

    for (int i = 0; i < points_per_policy; ++i) {
      // Stratified + jittered: every region of the op budget gets crash
      // points, none twice in the same place across seeds.
      uint64_t lo = 1 + (uint64_t(i) * total_ops) / points_per_policy;
      uint64_t hi = 1 + (uint64_t(i + 1) * total_ops) / points_per_policy;
      uint64_t crash_op = lo + rng.next_below(hi > lo ? hi - lo : 1);
      CrashTail tail = static_cast<CrashTail>(rng.next_below(3));
      double flip = tail == CrashTail::kLoseAll ? 0.0 : 0.3;
      run_crash_point(w, oracle, opts, crash_op, tail, flip,
                      /*media_rot=*/false, rng, &stats);
      if (HasFatalFailure()) return;
    }
  }
  // The sweep must actually exercise recovery, not vacuously skip.
  EXPECT_GE(stats.recovered, stats.runs * 3 / 4);
  EXPECT_GT(stats.replayed, 0u);
  RecordProperty("runs", stats.runs);
  RecordProperty("recovered", stats.recovered);
  RecordProperty("torn_tails", stats.torn_tails);
}

// --- Media rot: durable bytes flip AFTER the fsync promise ----------------

TEST(RecoverySweep, DurableCorruptionNeverReplaysACorruptFrame) {
  const int points = tiny_sweep() ? 4 : 24;
  Rng rng(0xBADD15C);
  const Workload w = make_workload(9);
  DurabilityOptions opts;
  opts.checkpoint_every = 6;

  uint64_t total_ops = 0;
  std::vector<uint64_t> oracle;
  {
    auto fs = std::make_shared<MemFs>();
    auto svc = make_service(w);
    ASSERT_TRUE(svc->enable_durability(fs, "dur", opts, w.initial));
    oracle = run_ingest(w, *svc);
    total_ops = fs->ops();
  }
  SweepStats stats;
  for (int i = 0; i < points; ++i) {
    uint64_t crash_op = 1 + rng.next_below(total_ops);
    run_crash_point(w, oracle, opts, crash_op, CrashTail::kKeepPrefix, 0.2,
                    /*media_rot=*/true, rng, &stats);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(stats.recovered, stats.runs / 2);
}

// --- Sharded kill/restore --------------------------------------------------

// Mirrors ShardedSpannerService::single_graph's shard layout so recover()
// rebuilds the same backends (initial edge lists are ignored by recovery —
// the logged graph shadow replaces them).
std::vector<ShardSpec> single_graph_specs(size_t n, uint32_t num_shards,
                                          const FullyDynamicSpannerConfig& cfg) {
  std::vector<ShardSpec> specs(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    specs[s].kind = ShardSpec::Kind::kFullyDynamic;
    specs[s].n = n;
    specs[s].fd = cfg;
    specs[s].fd.seed = hash_combine(cfg.seed, s);
  }
  return specs;
}

TEST(RecoverySweep, ShardedKillRestore) {
  const int points = tiny_sweep() ? 4 : 30;
  const size_t n = 160;
  const uint32_t S = 2;
  Rng rng(0x5AAD);
  auto [initial, batches] = gen_mixed_stream(n, 900, 60, 10, 44);

  FullyDynamicSpannerConfig fd;
  fd.k = 3;
  fd.seed = 77;

  for (int i = 0; i < points; ++i) {
    SCOPED_TRACE("point=" + std::to_string(i));
    auto fs = std::make_shared<MemFs>();
    ShardedConfig cfg;
    cfg.num_writers = 2;
    cfg.record_publishes = true;
    cfg.durability.enabled = true;
    cfg.durability.fs = fs;
    cfg.durability.dir = "root";
    cfg.durability.opts.checkpoint_every = 4;

    auto svc = ShardedSpannerService::single_graph(n, initial, S, fd, cfg);
    // Per-shard oracle: version -> checksum, seeded with version 0.
    std::vector<std::map<uint64_t, uint64_t>> oracle(S);
    for (uint32_t s = 0; s < S; ++s)
      oracle[s][0] = svc->shard_service(s).snapshot()->checksum();

    // Crash somewhere inside the async ingest (after construction, so both
    // genesis checkpoints are committed and recovery is all-or-nothing
    // guaranteed to succeed). Worker threads interleave WAL ops on the
    // shared MemFs nondeterministically — the crash point is therefore a
    // *distribution*, which is the point of sweeping many of them.
    uint64_t budget_guess = 40 + rng.next_below(60 * batches.size());
    fs->crash_at_op(budget_guess);
    for (const auto& b : batches) svc->submit(b.insertions, b.deletions);
    svc->flush();

    std::vector<uint64_t> watermark(S);
    for (uint32_t s = 0; s < S; ++s) {
      const ShardDurability* d = svc->shard_service(s).durability();
      ASSERT_NE(d, nullptr);
      watermark[s] = d->durable_version();
      for (const PublishRecord& pr : svc->publish_log(s))
        oracle[s][pr.version] = pr.checksum;
    }
    svc.reset();
    fs->crash_and_restart(static_cast<CrashTail>(rng.next_below(3)), rng, 0.2);

    std::vector<SpannerService::RecoveryReport> reps;
    auto back = ShardedSpannerService::recover(
        single_graph_specs(n, S, fd),
        std::make_unique<VertexRangeRouter>(n, S), cfg, &reps);
    ASSERT_NE(back, nullptr);
    ASSERT_EQ(reps.size(), S);
    for (uint32_t s = 0; s < S; ++s) {
      SCOPED_TRACE("shard=" + std::to_string(s));
      EXPECT_GE(reps[s].restored_version, watermark[s]);
      auto it = oracle[s].find(reps[s].restored_version);
      ASSERT_NE(it, oracle[s].end())
          << "restored a version the live run never published";
      EXPECT_EQ(reps[s].restored_checksum, it->second);
      EXPECT_TRUE(back->shard_service(s).snapshot()->consistent());
    }

    // The recovered sharded service keeps working: ingest more, flush,
    // and verify the composed view still serves.
    auto [u2, more] = gen_mixed_stream(n, 900, 60, 2, 45 + i);
    (void)u2;
    for (const auto& b : more) back->submit(b.insertions, b.deletions);
    back->flush();
    for (uint32_t s = 0; s < S; ++s)
      EXPECT_FALSE(back->shard_service(s).durability()->failed());
    auto view = back->view();
    EXPECT_GT(view.num_edges(), 0u);
  }
}

}  // namespace
}  // namespace parspan
