// Differential chaos suite for WAL-shipping replication (DESIGN.md §11.6).
//
// The oracle is the leader's own publish history: apply() is deterministic
// in (backend construction, batch history), so checksum-by-version of the
// crash-free leader run says exactly what every follower state must hash
// to. The invariant checked EVERYWHERE — after every pump round, under
// every transport fault schedule, across follower crashes — is:
//
//   a follower's (applied_version, applied_checksum) is always a point of
//   the leader's durable history, and the follower eventually converges to
//   the leader's durable watermark (possibly via an explicit, counted
//   reject + snapshot resync). Silent divergence == any follower state
//   whose checksum is not the oracle's at that version == instant failure.
//
// Transport faults mirror the MemFs crash harness: drop, duplicate,
// reorder, truncate, bit-flip, cursor loss, partition — all driven by a
// seeded Rng so any failing schedule replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/fault_fs.hpp"
#include "graph/generators.hpp"
#include "replication/failover.hpp"
#include "replication/replica_set.hpp"
#include "service/sharded_service.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

bool tiny_sweep() {
  const char* env = std::getenv("PARSPAN_SWEEP_TINY");
  return env != nullptr && env[0] == '1';
}

struct Workload {
  size_t n = 120;
  std::vector<Edge> initial;
  std::vector<UpdateBatch> batches;
  FullyDynamicSpannerConfig cfg;
};

Workload make_workload(uint64_t seed) {
  Workload w;
  auto [initial, batches] = gen_mixed_stream(w.n, 700, 40, 12, seed);
  w.initial = std::move(initial);
  w.batches = std::move(batches);
  w.cfg.k = 3;
  w.cfg.seed = seed * 7 + 1;
  return w;
}

std::unique_ptr<SpannerService> make_service(const Workload& w) {
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(w.n, w.initial, w.cfg),
      2 * w.cfg.k - 1);
}

// A fully ingested leader over MemFs plus its checksum-by-version oracle —
// shared across the property sweep (the leader's WAL history is a pure
// function of the workload, independent of any transport).
struct LeaderFixture {
  std::shared_ptr<MemFs> fs;
  std::unique_ptr<SpannerService> svc;
  std::vector<uint64_t> oracle;  // checksum by version
};

LeaderFixture make_ingested_leader(const Workload& w,
                                   const DurabilityOptions& opts) {
  LeaderFixture lf;
  lf.fs = std::make_shared<MemFs>();
  lf.svc = make_service(w);
  EXPECT_TRUE(lf.svc->enable_durability(lf.fs, "leader", opts, w.initial));
  lf.oracle.push_back(lf.svc->snapshot()->checksum());
  for (const auto& b : w.batches) {
    auto r = lf.svc->apply(b.insertions, b.deletions);
    lf.oracle.push_back(r.snapshot->checksum());
  }
  EXPECT_FALSE(lf.svc->durability()->failed());
  return lf;
}

// THE divergence check: any follower state must be a point of the oracle.
void assert_on_oracle(const FollowerReplica& f,
                      const std::vector<uint64_t>& oracle) {
  if (!f.has_state()) return;
  ASSERT_LT(f.applied_version(), oracle.size());
  ASSERT_EQ(f.applied_checksum(), oracle[f.applied_version()])
      << "SILENT DIVERGENCE at version " << f.applied_version();
}

// --- Healthy-channel convergence + read-your-writes spreading --------------

TEST(Replication, ConvergesAndSpreadsReadsOverChannelTransport) {
  const Workload w = make_workload(3);
  DurabilityOptions opts;
  opts.checkpoint_every = 8;

  auto fs = std::make_shared<MemFs>();
  auto svc = make_service(w);
  ASSERT_TRUE(svc->enable_durability(fs, "leader", opts, w.initial));
  ReplicationGroup group(svc.get(), /*epoch=*/1);
  auto ffs = std::make_shared<MemFs>();
  DurabilityOptions fopts;
  fopts.checkpoint_every = 8;
  for (int i = 0; i < 2; ++i)
    group.add_follower(std::make_shared<ChannelTransport>(), ffs,
                       "f" + std::to_string(i), fopts);

  std::vector<uint64_t> oracle{svc->snapshot()->checksum()};
  for (const auto& b : w.batches) {
    auto r = svc->apply(b.insertions, b.deletions);
    oracle.push_back(r.snapshot->checksum());
    group.pump();
    for (size_t i = 0; i < group.num_followers(); ++i)
      assert_on_oracle(group.follower(i), oracle);
  }
  // One extra round for the final acks (frames land on the pump after the
  // cursor that requested them).
  group.pump();
  ASSERT_TRUE(group.converged());
  const uint64_t durable = group.leader_durable();
  EXPECT_EQ(durable, w.batches.size());  // kEveryRecord: all published
  for (size_t i = 0; i < group.num_followers(); ++i) {
    EXPECT_EQ(group.follower(i).applied_version(), durable);
    EXPECT_EQ(group.follower(i).applied_checksum(), oracle[durable]);
    EXPECT_EQ(group.follower(i).rejects(), 0u);
    // Exactly one seeding snapshot, everything else incremental.
    EXPECT_EQ(group.follower(i).snapshot_resyncs(), 1u);
    EXPECT_GT(group.follower(i).records_applied(), 0u);
  }

  // Read-your-writes spreading: every read honors the watermark, and with
  // converged followers the leader is never needed.
  int by_follower[2] = {0, 0};
  for (int q = 0; q < 10; ++q) {
    auto r = group.read_at_least(durable);
    ASSERT_NE(r.snap, nullptr);
    EXPECT_GE(r.snap->version(), durable);
    EXPECT_EQ(r.snap->checksum(), oracle[r.snap->version()]);
    ASSERT_GE(r.source, 0);  // served by a follower, not the leader
    ++by_follower[r.source];
  }
  EXPECT_GT(by_follower[0], 0);  // round-robin actually spreads
  EXPECT_GT(by_follower[1], 0);

  // A watermark nobody replicated yet (leader applied, followers not
  // pumped): the leader must serve it.
  auto r2 = svc->apply(w.batches[0].insertions, w.batches[0].deletions);
  auto read = group.read_at_least(r2.snapshot->version());
  EXPECT_EQ(read.source, -1);
  EXPECT_GE(read.snap->version(), r2.snapshot->version());
}

// --- Satellite 1: lossy-transport property sweep ---------------------------

TEST(Replication, LossyTransportNeverSilentlyDiverges) {
  const int schedules = tiny_sweep() ? 6 : 48;
  const Workload w = make_workload(11);
  DurabilityOptions opts;
  opts.checkpoint_every = 200;  // retain the whole log: faults, not GC,
                                // are under test here
  LeaderFixture lf = make_ingested_leader(w, opts);
  const uint64_t durable = lf.svc->durability()->durable_version();
  ASSERT_EQ(durable, w.batches.size());

  Rng rng(0x57AB1E);
  uint64_t total_rejects = 0, total_dups = 0, total_resyncs = 0,
           total_mangled = 0;
  for (int it = 0; it < schedules; ++it) {
    SCOPED_TRACE("schedule=" + std::to_string(it));
    // Random fault schedule. Kept below certainty so eventual delivery
    // holds; the first two schedules pin the pure-corruption corners.
    FaultPlan plan;
    if (it == 0) {
      plan.bit_flip_p = 1.0;  // every frame mangled — nothing may apply
    } else if (it == 1) {
      plan.truncate_p = 1.0;
    } else {
      plan.drop_p = rng.next_double() * 0.4;
      plan.dup_p = rng.next_double() * 0.4;
      plan.reorder_p = rng.next_double() * 0.5;
      plan.truncate_p = rng.next_double() * 0.3;
      plan.bit_flip_p = rng.next_double() * 0.3;
      plan.cursor_drop_p = rng.next_double() * 0.4;
    }
    auto transport = std::make_shared<FaultyTransport>(plan, rng.next());
    auto ffs = std::make_shared<MemFs>();
    DurabilityOptions fopts;
    fopts.checkpoint_every = 16;
    FollowerReplica follower(ffs, "f", fopts, transport);
    LogShipper shipper(lf.fs, "leader", /*epoch=*/1, transport);

    const int max_rounds = 400;
    int round = 0;
    for (; round < max_rounds; ++round) {
      follower.pump();  // first pump advertises the subscription cursor
      shipper.pump(durable);
      assert_on_oracle(follower, lf.oracle);
      if (follower.applied_version() == durable) break;
    }
    if (it == 0 || it == 1) {
      // Total corruption: every frame must have been explicitly rejected,
      // and the follower must never have accepted ANY state.
      EXPECT_FALSE(follower.has_state());
      EXPECT_GT(follower.rejects(), 0u);
      EXPECT_EQ(follower.records_applied(), 0u);
      continue;
    }
    ASSERT_LT(round, max_rounds) << "no convergence under a sub-certain "
                                    "fault schedule";
    EXPECT_EQ(follower.applied_version(), durable);
    EXPECT_EQ(follower.applied_checksum(), lf.oracle[durable]);
    EXPECT_EQ(follower.epoch(), 1u);
    auto st = transport->stats();
    total_rejects += follower.rejects();
    total_dups += follower.duplicates_dropped();
    total_resyncs += follower.snapshot_resyncs();
    total_mangled += st.frames_truncated + st.frames_bit_flipped;
  }
  // The sweep must actually have injected and survived faults, not
  // vacuously passed over a clean channel.
  EXPECT_GT(total_mangled, 0u);
  EXPECT_GT(total_rejects, 0u);
  EXPECT_GT(total_dups, 0u);
  EXPECT_GE(total_resyncs, uint64_t(schedules - 2));
  RecordProperty("rejects", static_cast<int>(total_rejects));
  RecordProperty("resyncs", static_cast<int>(total_resyncs));
}

// --- Follower crash + local recovery ---------------------------------------

TEST(Replication, FollowerCrashRecoversOwnChainAndCatchesUp) {
  const int points = tiny_sweep() ? 3 : 12;
  const Workload w = make_workload(17);
  Rng rng(0xF0110);

  for (int p = 0; p < points; ++p) {
    SCOPED_TRACE("point=" + std::to_string(p));
    DurabilityOptions opts;
    opts.checkpoint_every = 8;
    auto fs = std::make_shared<MemFs>();
    auto svc = make_service(w);
    ASSERT_TRUE(svc->enable_durability(fs, "leader", opts, w.initial));
    ReplicationGroup group(svc.get(), 1);
    auto ffs = std::make_shared<MemFs>();
    DurabilityOptions fopts;
    fopts.checkpoint_every = 4;
    auto transport = std::make_shared<ChannelTransport>();
    group.add_follower(transport, ffs, "f", fopts);

    std::vector<uint64_t> oracle{svc->snapshot()->checksum()};
    // Crash the follower's disk mid-stream: its durability goes sticky-
    // failed while replication keeps applying in memory.
    const size_t crash_batch = 1 + rng.next_below(w.batches.size() - 2);
    uint64_t crash_op = 0;
    for (size_t b = 0; b < w.batches.size(); ++b) {
      auto r = svc->apply(w.batches[b].insertions, w.batches[b].deletions);
      oracle.push_back(r.snapshot->checksum());
      group.pump();
      assert_on_oracle(group.follower(0), oracle);
      if (b == crash_batch)
        crash_op = 1 + rng.next_below(20);  // soon, inside the next applies
      if (crash_op != 0 && b == crash_batch) ffs->crash_at_op(crash_op);
    }
    group.pump();

    // "Kill" the follower process and reboot its disk.
    const uint64_t follower_watermark = group.follower(0).durable_version();
    std::unique_ptr<FollowerReplica> dead = group.detach(0);
    dead.reset();
    ffs->crash_and_restart(static_cast<CrashTail>(rng.next_below(3)), rng,
                           0.2);

    auto revived = FollowerReplica::recover(ffs, "f", fopts, transport);
    ASSERT_TRUE(revived->has_state());
    // Local recovery restores a checksum-exact point of the leader's
    // history, at or above the follower's own durable watermark.
    EXPECT_GE(revived->applied_version(), follower_watermark);
    assert_on_oracle(*revived, oracle);
    EXPECT_EQ(revived->epoch(), 1u);

    // Rejoin and catch up to the leader — incrementally (no resync needed:
    // the leader's log still covers the gap).
    FollowerReplica& back = group.attach(std::move(revived), transport);
    for (int r = 0; r < 6 && !group.converged(); ++r) group.pump();
    ASSERT_TRUE(group.converged());
    EXPECT_EQ(back.applied_checksum(), oracle[back.applied_version()]);
    EXPECT_EQ(back.snapshot_resyncs(), 0u);  // recovered, not re-seeded
  }
}

// --- GC'd history forces an explicit snapshot resync ------------------------

// Regression: a reorder holdback pending when the schedule stops pumping
// used to vanish silently — neither delivered nor counted as dropped, so a
// schedule's delivered-frame accounting could not close. drain() (and the
// destructor) must release holdbacks into the channel and count them
// distinctly.
TEST(Replication, FaultyTransportDrainReleasesEndOfScheduleHoldbacks) {
  FaultPlan plan;
  plan.reorder_p = 1.0;  // every frame is held behind later traffic
  FaultyTransport t(plan, /*seed=*/11);

  ShipFrame a;
  a.bytes = {0x01, 0x02, 0x03};
  t.send_frame(a);
  // The natural dry-channel flush releases the first holdback...
  auto released = t.recv_frame();
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->bytes, a.bytes);
  EXPECT_EQ(t.stats().frames_drained_late, 0u);

  // ...but a frame held when the harness stops pumping needs drain().
  ShipFrame b;
  b.bytes = {0x04, 0x05};
  t.send_frame(b);
  t.drain();
  EXPECT_EQ(t.stats().frames_drained_late, 1u);
  auto late = t.recv_frame();
  ASSERT_TRUE(late.has_value()) << "drained holdback lost";
  EXPECT_EQ(late->bytes, b.bytes);
  EXPECT_FALSE(t.recv_frame().has_value());
  EXPECT_EQ(t.stats().frames_dropped, 0u)
      << "late delivery must not be booked as loss";
}

TEST(Replication, PartitionPastGcHorizonResyncsViaSnapshot) {
  const Workload w = make_workload(23);
  DurabilityOptions opts;
  opts.checkpoint_every = 3;  // aggressive rotation
  opts.keep_checkpoints = 1;  // and aggressive GC
  auto fs = std::make_shared<MemFs>();
  auto svc = make_service(w);
  ASSERT_TRUE(svc->enable_durability(fs, "leader", opts, w.initial));
  ReplicationGroup group(svc.get(), 1);
  FaultPlan clean;  // partition is a switch, not a probability
  auto transport = std::make_shared<FaultyTransport>(clean, 7);
  auto ffs = std::make_shared<MemFs>();
  group.add_follower(transport, ffs, "f", opts);

  std::vector<uint64_t> oracle{svc->snapshot()->checksum()};
  // Seed the follower, then partition and ingest far past the GC horizon.
  auto r0 = svc->apply(w.batches[0].insertions, w.batches[0].deletions);
  oracle.push_back(r0.snapshot->checksum());
  group.pump();
  group.pump();
  ASSERT_TRUE(group.converged());
  const uint64_t resyncs_before = group.follower(0).snapshot_resyncs();

  transport->set_partitioned(true);
  for (size_t b = 1; b < w.batches.size(); ++b) {
    auto r = svc->apply(w.batches[b].insertions, w.batches[b].deletions);
    oracle.push_back(r.snapshot->checksum());
    group.pump();  // ships into the void
  }
  // The follower's ack (version 1) must now be below every retained
  // segment: incremental shipping is impossible.
  transport->set_partitioned(false);
  for (int r = 0; r < 8 && !group.converged(); ++r) group.pump();
  ASSERT_TRUE(group.converged());
  EXPECT_GT(group.follower(0).snapshot_resyncs(), resyncs_before);
  assert_on_oracle(group.follower(0), oracle);
  EXPECT_EQ(group.follower(0).applied_version(), group.leader_durable());
}

// --- Sharded integration: replicated read-your-writes views ----------------

TEST(Replication, ShardedViewsComposeFromFollowers) {
  const size_t n = 160;
  const uint32_t S = 2;
  auto [initial, batches] = gen_mixed_stream(n, 900, 60, 8, 91);
  FullyDynamicSpannerConfig fd;
  fd.k = 3;
  fd.seed = 77;

  auto fs = std::make_shared<MemFs>();
  ShardedConfig cfg;
  cfg.num_writers = 2;
  cfg.durability.enabled = true;
  cfg.durability.fs = fs;
  cfg.durability.dir = "root";
  cfg.durability.opts.checkpoint_every = 8;
  auto svc = ShardedSpannerService::single_graph(n, initial, S, fd, cfg);

  // One replication group per shard, one follower each.
  std::vector<std::unique_ptr<ReplicationGroup>> groups;
  auto ffs = std::make_shared<MemFs>();
  for (uint32_t s = 0; s < S; ++s) {
    groups.push_back(
        std::make_unique<ReplicationGroup>(&svc->shard_service(s), 1));
    groups[s]->add_follower(std::make_shared<ChannelTransport>(), ffs,
                            "f" + std::to_string(s),
                            cfg.durability.opts);
  }
  ReplicatedShardedReader reader(svc.get());
  for (uint32_t s = 0; s < S; ++s)
    reader.add_follower(s, &groups[s]->follower(0));

  for (const auto& b : batches) svc->submit(b.insertions, b.deletions);
  VersionVector vv = svc->flush();
  for (uint32_t s = 0; s < S; ++s) {
    for (int r = 0; r < 4 && !groups[s]->converged(); ++r) groups[s]->pump();
    ASSERT_TRUE(groups[s]->converged()) << "shard " << s;
  }

  // The composed view must dominate the flush vector (read-your-writes)
  // and equal the leader's own composed view edge-for-edge.
  std::vector<int> sources;
  ShardedView view = reader.view_at_least(vv, &sources);
  EXPECT_TRUE(view.versions().dominates(vv));
  for (uint32_t s = 0; s < S; ++s)
    EXPECT_EQ(sources[s], 0) << "caught-up follower must serve shard " << s;
  EXPECT_EQ(reader.follower_reads(), uint64_t(S));
  ShardedView leader_view = svc->view();
  ASSERT_EQ(view.num_edges(), leader_view.num_edges());
  auto ve = view.edges();
  auto le = leader_view.edges();
  ASSERT_EQ(ve.size(), le.size());
  for (size_t i = 0; i < ve.size(); ++i) {
    EXPECT_EQ(ve[i].u, le[i].u);
    EXPECT_EQ(ve[i].v, le[i].v);
  }
  // Composed reads answer through follower snapshots.
  EXPECT_EQ(view.has_edge(ve[0].u, ve[0].v), true);

  // With followers lagging (new writes unreplicated), the router falls
  // back to the leader rather than violating read-your-writes.
  for (const auto& b : batches) svc->submit(b.insertions, b.deletions);
  VersionVector vv2 = svc->flush();
  std::vector<int> sources2;
  ShardedView view2 = reader.view_at_least(vv2, &sources2);
  EXPECT_TRUE(view2.versions().dominates(vv2));
  for (uint32_t s = 0; s < S; ++s) EXPECT_EQ(sources2[s], -1);
  EXPECT_FALSE(svc->durability_failed());
}

// --- Frozen wire format -----------------------------------------------------

// Replication frames are a persistence-grade format: a leader and follower
// from different builds must agree on every byte. These goldens pin the
// frame encoding the way PR 6's goldens pin the WAL/checkpoint formats —
// if one of these values changes, the wire format changed, and mixed-
// version replication just broke.
TEST(Replication, FrameFormatGoldens) {
  WalRecord rec;
  rec.type = WalRecord::kBatch;
  rec.version = 7;
  rec.checksum = 0x0123456789abcdefULL;
  rec.input_deleted = {edge_key(1, 2)};
  rec.input_inserted = {edge_key(2, 3), edge_key(3, 9)};
  rec.diff_removed = {edge_key(1, 2)};
  rec.diff_inserted = {edge_key(2, 3), edge_key(3, 9)};
  ShipFrame rf = make_record_frame(/*epoch=*/5, rec);
  EXPECT_EQ(crc32c(rf.bytes.data(), rf.bytes.size()), 0xc6be0cf9u);

  DurableState st;
  st.n = 16;
  st.stretch = 5;
  st.version = 42;
  st.snap_keys = {edge_key(0, 1), edge_key(2, 5), edge_key(3, 15)};
  st.graph_keys = {edge_key(0, 1), edge_key(1, 4), edge_key(2, 5),
                   edge_key(3, 15)};
  st.checksum = snapshot_content_checksum(st.n, st.stretch, st.version,
                                          st.snap_keys);
  ShipFrame sf = make_snapshot_frame(/*epoch=*/5, st);
  EXPECT_EQ(crc32c(sf.bytes.data(), sf.bytes.size()), 0x936bf51fu);

  // Round-trip: both frames parse back to themselves.
  auto pr = parse_frame(rf);
  ASSERT_TRUE(pr.has_value());
  EXPECT_EQ(pr->type, FrameType::kRecord);
  EXPECT_EQ(pr->epoch, 5u);
  EXPECT_EQ(pr->rec.version, 7u);
  EXPECT_EQ(pr->rec.checksum, rec.checksum);
  EXPECT_EQ(pr->rec.diff_inserted, rec.diff_inserted);
  auto ps = parse_frame(sf);
  ASSERT_TRUE(ps.has_value());
  EXPECT_EQ(ps->type, FrameType::kSnapshot);
  EXPECT_EQ(ps->state.n, st.n);
  EXPECT_EQ(ps->state.version, st.version);
  EXPECT_EQ(ps->state.snap_keys, st.snap_keys);
  EXPECT_EQ(ps->state.graph_keys, st.graph_keys);

  // Single-bit flips can never pass: CRC32C is linear, so flipping any one
  // bit flips a fixed nonzero syndrome. Walk a few positions explicitly.
  for (size_t at : {size_t(0), size_t(9), rf.bytes.size() - 1}) {
    ShipFrame bad = rf;
    bad.bytes[at] ^= 0x10;
    EXPECT_FALSE(parse_frame(bad).has_value()) << "bit flip at " << at;
  }
  // Truncation at every boundary short of full length must fail too.
  for (size_t len : {size_t(0), size_t(16), size_t(17), rf.bytes.size() - 1}) {
    ShipFrame bad = rf;
    bad.bytes.resize(len);
    EXPECT_FALSE(parse_frame(bad).has_value()) << "truncated to " << len;
  }
}

// --- Watermark rule ---------------------------------------------------------

// Unsynced WAL bytes are readable through the page cache, but must never
// ship: the shipper's ceiling is the durable watermark the caller passes.
TEST(Replication, ShipperNeverShipsPastDurableWatermark) {
  const Workload w = make_workload(31);
  DurabilityOptions opts;
  opts.fsync_policy = FsyncPolicy::kEveryN;
  opts.fsync_every_n = 1000;      // nothing syncs on its own
  opts.checkpoint_every = 0;      // and nothing checkpoints
  auto fs = std::make_shared<MemFs>();
  auto svc = make_service(w);
  ASSERT_TRUE(svc->enable_durability(fs, "leader", opts, w.initial));
  ReplicationGroup group(svc.get(), 1);
  auto ffs = std::make_shared<MemFs>();
  group.add_follower(std::make_shared<ChannelTransport>(), ffs, "f", opts);

  for (const auto& b : w.batches) svc->apply(b.insertions, b.deletions);
  // Everything applied is published — but nothing beyond genesis is
  // durable, so nothing beyond genesis may reach the follower.
  ASSERT_EQ(svc->version(), w.batches.size());
  ASSERT_EQ(group.leader_durable(), 0u);
  for (int r = 0; r < 4; ++r) group.pump();
  EXPECT_EQ(group.follower(0).applied_version(), 0u);
  EXPECT_TRUE(group.converged());  // converged AT the watermark
}

}  // namespace
}  // namespace parspan
