// Cross-module failure injection and boundary cases: empty structures,
// empty batches, self-loops, out-of-range vertices, and pathological
// graph shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/bundle.hpp"
#include "core/fully_dynamic_spanner.hpp"
#include "core/sparse_spanner.hpp"
#include "core/sparsifier.hpp"
#include "core/ultra.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

TEST(EdgeCases, EmptyBatchesEverywhere) {
  auto edges = gen_erdos_renyi(20, 60, 1);
  FullyDynamicSpannerConfig c1;
  FullyDynamicSpanner s1(20, edges, c1);
  auto d1 = s1.update({}, {});
  EXPECT_TRUE(d1.inserted.empty() && d1.removed.empty());

  SparseSpannerConfig c2;
  SparseSpanner s2(20, edges, c2);
  auto d2 = s2.update({}, {});
  EXPECT_TRUE(d2.inserted.empty() && d2.removed.empty());
  EXPECT_TRUE(s2.check_invariants());

  UltraConfig c3;
  UltraSparseSpanner s3(20, edges, c3);
  auto d3 = s3.update({}, {});
  EXPECT_TRUE(d3.inserted.empty() && d3.removed.empty());
  EXPECT_TRUE(s3.check_invariants());
}

TEST(EdgeCases, SelfLoopsAndOutOfRangeFiltered) {
  FullyDynamicSpannerConfig cfg;
  FullyDynamicSpanner sp(10, {{3, 3}, {2, 99}, {200, 1}}, cfg);
  EXPECT_EQ(sp.num_edges(), 0u);
  auto d = sp.insert_edges({{4, 4}, {5, 1000}});
  EXPECT_TRUE(d.inserted.empty());
  EXPECT_EQ(sp.num_edges(), 0u);
}

TEST(EdgeCases, StarGraphAllStructures) {
  // Stars stress head/cluster logic: one huge-degree hub.
  auto edges = gen_star(60);
  {
    FullyDynamicSpannerConfig cfg;
    cfg.k = 2;
    FullyDynamicSpanner sp(60, edges, cfg);
    // A star is a tree: the spanner must keep every edge.
    EXPECT_EQ(sp.spanner_size(), edges.size());
    EXPECT_TRUE(sp.check_invariants());
  }
  {
    SparseSpannerConfig cfg;
    SparseSpanner sp(60, edges, cfg);
    EXPECT_EQ(sp.spanner_size(), edges.size());
    EXPECT_TRUE(sp.check_invariants());
  }
  {
    UltraConfig cfg;
    cfg.x = 2;
    UltraSparseSpanner sp(60, edges, cfg);
    EXPECT_EQ(sp.spanner_size(), edges.size());
    EXPECT_TRUE(sp.check_invariants());
  }
}

TEST(EdgeCases, DisconnectedComponentsIndependent) {
  // Two cliques with no connection.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) edges.emplace_back(u, v);
  for (VertexId u = 10; u < 20; ++u)
    for (VertexId v = u + 1; v < 20; ++v) edges.emplace_back(u, v);
  SparseSpannerConfig cfg;
  cfg.xs = {2.0};
  SparseSpanner sp(20, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(20, edges, sp.spanner_edges(), sp.stretch_bound()));
  // Delete one whole clique.
  std::vector<Edge> half(edges.begin(), edges.begin() + 45);
  sp.delete_edges(half);
  EXPECT_TRUE(sp.check_invariants());
}

TEST(EdgeCases, RepeatedInsertDeleteChurnSameEdge) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  FullyDynamicSpanner sp(6, gen_cycle(6), cfg);
  for (int round = 0; round < 20; ++round) {
    sp.delete_edges({{0, 1}});
    ASSERT_TRUE(sp.check_invariants());
    sp.insert_edges({{0, 1}});
    ASSERT_TRUE(sp.check_invariants());
  }
  EXPECT_EQ(sp.num_edges(), 6u);
}

TEST(EdgeCases, BundleWithMoreLevelsThanContent) {
  // t far larger than needed: the chain stops once a level absorbs all.
  auto edges = gen_path(15);
  BundleConfig cfg;
  cfg.t = 10;
  SpannerBundle b(15, edges, cfg);
  EXPECT_LE(b.levels(), 10u);
  EXPECT_EQ(b.bundle_size(), edges.size());  // trees are fully absorbed
  EXPECT_TRUE(b.residual_edges().empty());
  EXPECT_TRUE(b.check_invariants());
}

TEST(EdgeCases, SparsifierOnTinyGraph) {
  SparsifierConfig cfg;
  cfg.t = 2;
  DecrementalSparsifier sp(5, gen_cycle(5), cfg);
  // Below min_stage_edges: everything sits in the final stage, weight 1.
  EXPECT_EQ(sp.size(), 5u);
  for (auto& we : sp.sparsifier_edges()) EXPECT_DOUBLE_EQ(we.w, 1.0);
  auto d = sp.delete_edges(gen_cycle(5));
  EXPECT_EQ(sp.size(), 0u);
  EXPECT_EQ(d.removed.size(), 5u);
}

TEST(EdgeCases, UltraWithXLargerThanGraph) {
  UltraConfig cfg;
  cfg.x = 8;  // T = 240 >> any degree here: everything light
  auto edges = gen_erdos_renyi(30, 90, 2);
  UltraSparseSpanner sp(30, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(30, edges, sp.spanner_edges(), sp.stretch_bound()));
}

TEST(EdgeCases, GrowFromEmptyToDenseAndBack) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  FullyDynamicSpanner sp(24, {}, cfg);
  auto all = gen_complete(24);
  // Insert in odd-sized chunks to exercise the U_r / U_i splitting.
  for (size_t lo = 0; lo < all.size(); lo += 37) {
    std::vector<Edge> chunk(
        all.begin() + lo,
        all.begin() + std::min(all.size(), lo + 37));
    sp.insert_edges(chunk);
    ASSERT_TRUE(sp.check_invariants());
  }
  EXPECT_EQ(sp.num_edges(), all.size());
  EXPECT_TRUE(is_spanner(24, all, sp.spanner_edges(), 3));
  for (size_t lo = 0; lo < all.size(); lo += 53) {
    std::vector<Edge> chunk(
        all.begin() + lo,
        all.begin() + std::min(all.size(), lo + 53));
    sp.delete_edges(chunk);
    ASSERT_TRUE(sp.check_invariants());
  }
  EXPECT_EQ(sp.num_edges(), 0u);
}

// --- "Deletions first, duplicates filtered" batch semantics, pinned. ------

TEST(EdgeCases, SameEdgeInBothSidesOfOneBatch) {
  // Deletions apply first: an edge listed on both sides of one batch is
  // deleted, then re-inserted — it ends PRESENT either way.
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto edges = gen_erdos_renyi(30, 120, 5);
  FullyDynamicSpanner sp(30, edges, cfg);
  size_t m = sp.num_edges();

  // Present edge on both sides: count unchanged, edge still present.
  Edge present = edges[0];
  sp.update({present}, {present});
  EXPECT_TRUE(sp.has_edge(present));
  EXPECT_EQ(sp.num_edges(), m);
  EXPECT_TRUE(sp.check_invariants());

  // Absent edge on both sides: the deletion is a filtered no-op, the
  // insertion lands — the edge ends present here too.
  Edge absent{0, 0};
  for (VertexId u = 0; u < 30 && absent.u == absent.v; ++u)
    for (VertexId v = u + 1; v < 30; ++v)
      if (!sp.has_edge({u, v})) {
        absent = {u, v};
        break;
      }
  ASSERT_NE(absent.u, absent.v);
  sp.update({absent}, {absent});
  EXPECT_TRUE(sp.has_edge(absent));
  EXPECT_EQ(sp.num_edges(), m + 1);
  EXPECT_TRUE(sp.check_invariants());
}

TEST(EdgeCases, ReinsertPresentEdgeIsFilteredNoop) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto edges = gen_erdos_renyi(25, 100, 6);
  FullyDynamicSpanner sp(25, edges, cfg);
  size_t m = sp.num_edges();
  size_t s = sp.spanner_size();
  // Re-inserting present edges (including the same edge twice in one
  // batch) is filtered before it reaches any partition: no diff, no churn.
  auto d = sp.insert_edges({edges[1], edges[2], edges[1]});
  EXPECT_TRUE(d.inserted.empty() && d.removed.empty());
  EXPECT_EQ(sp.num_edges(), m);
  EXPECT_EQ(sp.spanner_size(), s);
  EXPECT_TRUE(sp.check_invariants());
}

TEST(EdgeCases, ZeroAndOneVertexGraphs) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  {
    FullyDynamicSpanner sp(0, {{0, 1}}, cfg);
    EXPECT_EQ(sp.num_edges(), 0u);
    auto d = sp.update({{0, 1}, {2, 3}}, {{0, 1}});
    EXPECT_TRUE(d.inserted.empty() && d.removed.empty());
    EXPECT_EQ(sp.spanner_size(), 0u);
    EXPECT_TRUE(sp.check_invariants());
  }
  {
    FullyDynamicSpanner sp(1, {{0, 0}, {0, 1}}, cfg);
    EXPECT_EQ(sp.num_edges(), 0u);
    auto d = sp.update({{0, 0}}, {{0, 0}});
    EXPECT_TRUE(d.inserted.empty() && d.removed.empty());
    EXPECT_TRUE(sp.check_invariants());
  }
  // The serving layer degrades identically: empty snapshots, no crashes.
  for (size_t n : {size_t{0}, size_t{1}}) {
    SpannerService svc(
        std::make_unique<FullyDynamicSpanner>(n, std::vector<Edge>{}, cfg),
        5);
    auto r = svc.apply({{0, 1}}, {{0, 1}});
    EXPECT_EQ(r.snapshot->num_edges(), 0u);
    EXPECT_TRUE(r.snapshot->consistent());
    EXPECT_FALSE(r.snapshot->has_edge(0, 1));
    if (n == 1) EXPECT_EQ(r.snapshot->distance(0, 0, 3), 0u);
  }
}

TEST(EdgeCases, DeletionBatchLargerThanEdgeCount) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto edges = gen_erdos_renyi(20, 30, 8);
  FullyDynamicSpanner sp(20, edges, cfg);
  ASSERT_EQ(sp.num_edges(), 30u);
  auto before = sp.spanner_edges();
  std::sort(before.begin(), before.end());

  // Batch of 3x the edge count: every live edge (twice), plus absent and
  // out-of-range entries. Everything beyond the live set filters out.
  std::vector<Edge> del = edges;
  del.insert(del.end(), edges.begin(), edges.end());
  for (VertexId v = 0; v < 20; ++v) del.push_back({v, VertexId(v + 100)});
  auto d = sp.delete_edges(del);
  EXPECT_EQ(sp.num_edges(), 0u);
  EXPECT_EQ(sp.spanner_size(), 0u);
  EXPECT_TRUE(d.inserted.empty());
  // The net diff removes exactly the previous spanner, key-sorted.
  ASSERT_EQ(d.removed.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(d.removed[i].key(), before[i].key());
  EXPECT_TRUE(sp.check_invariants());
}

}  // namespace
}  // namespace parspan
